// Package oplog is the durable replication log behind the transport
// engine: an append-only store of causally-stamped operations that
// survives process crashes, plus the snapshot that bounds it.
//
// The paper's anti-entropy story assumes a retained operation history;
// retaining it only in memory is the scalability trap Letia, Preguiça &
// Shapiro (2009) warn garbage-collection-free CRDT deployments fall into.
// The log fixes both halves: records are persisted in length-prefixed
// segment files so a restarted replica resumes exactly where it crashed
// (re-stamping nothing), and a compaction barrier — a document snapshot
// tagged with its vector clock — lets segments wholly below the barrier be
// deleted, so disk and memory stay proportional to the post-snapshot
// suffix rather than the whole edit history.
//
// On-disk layout, one directory per replica:
//
//	000000000000000001.seg   sealed segment
//	000000000000000002.seg   active segment (appends go here)
//	snapshot.snp             latest compaction snapshot (atomic rename)
//
// Segment format: an 8-byte header ("TDLOG001"), then records. Each
// record is
//
//	uint32  payload length (little endian)
//	uint32  CRC-32 (IEEE) of the payload
//	payload: uvarint site | uvarint seq | body bytes
//
// A torn tail — a crash mid-write — is detected by the length/CRC check
// and truncated away on reopen; corruption anywhere but the tail of the
// last segment is reported as an error rather than silently dropped,
// because it means bytes the log previously acknowledged were damaged.
package oplog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/vclock"
)

// FsyncMode selects when appends reach stable storage.
type FsyncMode int

const (
	// FsyncBatch (the default) leaves fsync to the caller's Sync calls —
	// the transport engine syncs once per flushed batch, before frames fan
	// out to peers.
	FsyncBatch FsyncMode = iota
	// FsyncAlways syncs after every Append: maximum durability, one
	// fsync per record.
	FsyncAlways
	// FsyncOff never syncs (Close still does). A crash may lose the
	// unsynced suffix — safe for replayable remote operations, but locally
	// generated operations lost this way can never be re-stamped, so this
	// mode is for benchmarks and tests only.
	FsyncOff
)

// Defaults and limits.
const (
	segMagic = "TDLOG001"
	snapName = "snapshot.snp"

	// DefaultSegmentBytes is the roll threshold for the active segment.
	DefaultSegmentBytes = 1 << 20
	// MaxRecordBytes bounds one record's payload so a corrupt length
	// prefix cannot force an arbitrary allocation.
	MaxRecordBytes = 1 << 26

	recHdrSize = 8 // uint32 length + uint32 crc
)

var snapMagic = [8]byte{'T', 'D', 'S', 'N', '0', '0', '1', '\n'}

// Options configures a Log.
type Options struct {
	// Fsync is the append durability policy (default FsyncBatch).
	Fsync FsyncMode
	// SegmentBytes is the size at which the active segment is sealed and a
	// new one started (default DefaultSegmentBytes).
	SegmentBytes int
}

// segment is one on-disk segment file and its in-memory summary.
type segment struct {
	path string
	idx  uint64
	// summary holds the maximum sequence number recorded per site: the
	// segment is wholly covered by a cutoff clock iff the cutoff dominates
	// it, which is the compaction test.
	summary vclock.VC
	bytes   int64
	records int
}

// Log is a durable operation log. Methods are safe for use from one
// goroutine at a time (the transport engine's actor owns it); Open and
// Close are not safe to race Append.
type Log struct {
	dir    string
	opt    Options
	sealed []*segment
	active *segment
	f      *os.File
	dirty  bool

	snapClock vclock.VC
}

// Open opens (or creates) the log in dir, scanning existing segments,
// truncating a torn tail left by a crash, and loading the snapshot
// barrier if one was written.
func Open(dir string, opt Options) (*Log, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("oplog: %w", err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil {
		return nil, fmt.Errorf("oplog: %w", err)
	}
	sort.Strings(names)
	l := &Log{dir: dir, opt: opt}
	for i, name := range names {
		var idx uint64
		if _, err := fmt.Sscanf(filepath.Base(name), "%d.seg", &idx); err != nil {
			return nil, fmt.Errorf("oplog: alien segment name %q", name)
		}
		seg := &segment{path: name, idx: idx, summary: vclock.New()}
		last := i == len(names)-1
		if err := scanSegment(seg, last, nil); err != nil {
			return nil, err
		}
		if last {
			l.active = seg
		} else {
			l.sealed = append(l.sealed, seg)
		}
	}
	if l.active == nil {
		if err := l.roll(1); err != nil {
			return nil, err
		}
	} else {
		f, err := os.OpenFile(l.active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("oplog: %w", err)
		}
		l.f = f
	}
	if _, clock, err := l.Snapshot(); err != nil {
		l.f.Close()
		return nil, err
	} else if clock != nil {
		l.snapClock = clock
	}
	return l, nil
}

// scanSegment validates seg's records, filling its summary. A short or
// CRC-damaged record at the tail is truncated away when truncateTail is
// set (the last segment: a crash mid-append); anywhere else it is an
// error. When fn is non-nil it is called for each valid record.
func scanSegment(seg *segment, truncateTail bool, fn func(site ident.SiteID, seq uint64, body []byte) error) error {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return fmt.Errorf("oplog: %w", err)
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		if truncateTail && len(data) < len(segMagic) && string(data) == segMagic[:len(data)] {
			// A crash between create and header write: rewrite the header.
			if err := os.WriteFile(seg.path, []byte(segMagic), 0o644); err != nil {
				return fmt.Errorf("oplog: %w", err)
			}
			seg.bytes = int64(len(segMagic))
			return nil
		}
		return fmt.Errorf("oplog: segment %s: bad header", seg.path)
	}
	off := len(segMagic)
	good := off
	for off < len(data) {
		site, seq, body, n, err := parseRecord(data[off:])
		if err != nil {
			if truncateTail && tailArtifact(data[off:]) {
				return truncateAt(seg, int64(good))
			}
			return fmt.Errorf("oplog: segment %s: record at %d: %w", seg.path, off, err)
		}
		if fn != nil {
			if err := fn(site, seq, body); err != nil {
				return err
			}
		}
		if seq > seg.summary.Get(site) {
			seg.summary[site] = seq
		}
		seg.records++
		off += n
		good = off
	}
	seg.bytes = int64(good)
	return nil
}

// parseRecord decodes one record from the front of buf, returning the
// bytes consumed.
func parseRecord(buf []byte) (site ident.SiteID, seq uint64, body []byte, n int, err error) {
	if len(buf) < recHdrSize {
		return 0, 0, nil, 0, fmt.Errorf("torn header")
	}
	plen := binary.LittleEndian.Uint32(buf)
	sum := binary.LittleEndian.Uint32(buf[4:])
	if plen == 0 || plen > MaxRecordBytes {
		return 0, 0, nil, 0, fmt.Errorf("payload length %d out of range", plen)
	}
	if uint64(plen) > uint64(len(buf)-recHdrSize) {
		return 0, 0, nil, 0, fmt.Errorf("torn payload")
	}
	payload := buf[recHdrSize : recHdrSize+int(plen)]
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, 0, nil, 0, fmt.Errorf("checksum mismatch")
	}
	s, k := binary.Uvarint(payload)
	if k <= 0 {
		return 0, 0, nil, 0, fmt.Errorf("truncated site")
	}
	if s == 0 || ident.SiteID(s) > ident.MaxSiteID {
		return 0, 0, nil, 0, fmt.Errorf("site %d out of range", s)
	}
	q, k2 := binary.Uvarint(payload[k:])
	if k2 <= 0 {
		return 0, 0, nil, 0, fmt.Errorf("truncated seq")
	}
	if q == 0 {
		return 0, 0, nil, 0, fmt.Errorf("zero seq")
	}
	return ident.SiteID(s), q, payload[k+k2:], recHdrSize + int(plen), nil
}

// tailArtifact reports whether a failed record parse at the end of the
// last segment looks like a crash mid-append — a record that does not fit
// in the remaining bytes, or one that runs exactly to end-of-file — as
// opposed to damage with acknowledged records after it, which truncation
// would silently drop and so must be reported instead.
func tailArtifact(buf []byte) bool {
	if len(buf) < recHdrSize {
		return true // torn header
	}
	plen := binary.LittleEndian.Uint32(buf)
	if plen == 0 || plen > MaxRecordBytes {
		return true // garbage length: a partially written header
	}
	return recHdrSize+int(plen) >= len(buf)
}

func truncateAt(seg *segment, n int64) error {
	if err := os.Truncate(seg.path, n); err != nil {
		return fmt.Errorf("oplog: %w", err)
	}
	seg.bytes = n
	return nil
}

// segPath names segment idx.
func (l *Log) segPath(idx uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%018d.seg", idx))
}

// roll seals the active segment (if any) and starts segment idx.
func (l *Log) roll(idx uint64) error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("oplog: %w", err)
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("oplog: %w", err)
		}
		l.sealed = append(l.sealed, l.active)
		l.f, l.active = nil, nil
	}
	seg := &segment{path: l.segPath(idx), idx: idx, summary: vclock.New()}
	f, err := os.OpenFile(seg.path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("oplog: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("oplog: %w", err)
	}
	seg.bytes = int64(len(segMagic))
	l.active, l.f = seg, f
	return nil
}

// Append writes one record: the stamped operation body for (site, seq).
// Under FsyncAlways the record is on stable storage when Append returns;
// otherwise durability waits for Sync, segment roll, or Close.
func (l *Log) Append(site ident.SiteID, seq uint64, body []byte) error {
	if l.f == nil {
		return fmt.Errorf("oplog: closed")
	}
	if site == 0 || site > ident.MaxSiteID || seq == 0 {
		return fmt.Errorf("oplog: invalid record stamp s%d#%d", site, seq)
	}
	payload := binary.AppendUvarint(nil, uint64(site))
	payload = binary.AppendUvarint(payload, seq)
	payload = append(payload, body...)
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("oplog: record of %d bytes exceeds limit", len(payload))
	}
	rec := make([]byte, recHdrSize, recHdrSize+len(payload))
	binary.LittleEndian.PutUint32(rec, uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(payload))
	rec = append(rec, payload...)
	if _, err := l.f.Write(rec); err != nil {
		return fmt.Errorf("oplog: %w", err)
	}
	l.active.bytes += int64(len(rec))
	l.active.records++
	if seq > l.active.summary.Get(site) {
		l.active.summary[site] = seq
	}
	l.dirty = true
	if l.opt.Fsync == FsyncAlways {
		if err := l.Sync(); err != nil {
			return err
		}
	}
	if l.active.bytes >= int64(l.opt.SegmentBytes) {
		return l.roll(l.active.idx + 1)
	}
	return nil
}

// Sync flushes appended records to stable storage.
func (l *Log) Sync() error {
	if l.f == nil || !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("oplog: %w", err)
	}
	l.dirty = false
	return nil
}

// Replay streams every retained record in append order. Records covered
// by the snapshot barrier may still be present (compaction removes whole
// segments only); callers filter with their clock.
func (l *Log) Replay(fn func(site ident.SiteID, seq uint64, body []byte) error) error {
	segs := append(append([]*segment(nil), l.sealed...), l.active)
	for _, seg := range segs {
		if seg == nil {
			continue
		}
		fresh := &segment{path: seg.path, idx: seg.idx, summary: vclock.New()}
		if err := scanSegment(fresh, false, fn); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns the stored compaction snapshot and its clock, or
// (nil, nil, nil) when none has been written.
func (l *Log) Snapshot() ([]byte, vclock.VC, error) {
	data, err := os.ReadFile(filepath.Join(l.dir, snapName))
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("oplog: %w", err)
	}
	if len(data) < len(snapMagic)+4 || string(data[:len(snapMagic)]) != string(snapMagic[:]) {
		return nil, nil, fmt.Errorf("oplog: snapshot: bad header")
	}
	rest := data[len(snapMagic)+4:]
	if crc32.ChecksumIEEE(rest) != binary.LittleEndian.Uint32(data[len(snapMagic):]) {
		return nil, nil, fmt.Errorf("oplog: snapshot: checksum mismatch")
	}
	clock, off, err := vclock.DecodeBinary(rest, -1)
	if err != nil {
		return nil, nil, fmt.Errorf("oplog: snapshot: %w", err)
	}
	return rest[off:], clock, nil
}

// WriteSnapshot atomically replaces the stored snapshot with (data,
// clock) and seals the active segment so records below the clock become
// eligible for Compact. The snapshot is fsynced before the rename, so a
// crash at any point leaves either the old snapshot or the new one —
// never neither. Truncation is a separate, explicit Compact call: the
// engine keeps one compaction generation of slack so live peers slightly
// behind the newest barrier can still be served operations.
func (l *Log) WriteSnapshot(data []byte, clock vclock.VC) error {
	if l.f == nil {
		return fmt.Errorf("oplog: closed")
	}
	body := append(clock.AppendBinary(nil), data...)
	buf := append([]byte(nil), snapMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
	buf = append(buf, body...)

	tmp := filepath.Join(l.dir, snapName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("oplog: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("oplog: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("oplog: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("oplog: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapName)); err != nil {
		return fmt.Errorf("oplog: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	l.snapClock = clock.Clone()
	// Seal the active segment so records below the new barrier become
	// eligible for removal rather than pinned by the open file.
	if l.active.records > 0 {
		if err := l.roll(l.active.idx + 1); err != nil {
			return err
		}
	}
	return nil
}

// Compact removes sealed segments whose every record is covered by the
// cutoff clock, returning how many were deleted.
func (l *Log) Compact(cutoff vclock.VC) (int, error) {
	kept := l.sealed[:0]
	removed := 0
	for _, seg := range l.sealed {
		if cutoff.Dominates(seg.summary) {
			if err := os.Remove(seg.path); err != nil {
				return removed, fmt.Errorf("oplog: %w", err)
			}
			removed++
			continue
		}
		kept = append(kept, seg)
	}
	l.sealed = kept
	if removed > 0 {
		if err := syncDir(l.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// SnapClock returns the stored snapshot barrier clock (nil when no
// snapshot has been written).
func (l *Log) SnapClock() vclock.VC { return l.snapClock.Clone() }

// Segments returns the number of live segment files (sealed + active).
func (l *Log) Segments() int { return len(l.sealed) + 1 }

// SizeBytes returns the total bytes across live segment files.
func (l *Log) SizeBytes() int64 {
	var n int64
	for _, seg := range l.sealed {
		n += seg.bytes
	}
	if l.active != nil {
		n += l.active.bytes
	}
	return n
}

// Records returns the number of records across live segments.
func (l *Log) Records() int {
	n := 0
	for _, seg := range l.sealed {
		n += seg.records
	}
	if l.active != nil {
		n += l.active.records
	}
	return n
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Close syncs and closes the active segment. The log is unusable after.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// syncDir fsyncs a directory so renames and removals are durable. The
// sync itself is best-effort: several filesystems reject fsync on
// directories (EINVAL) without that implying data loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("oplog: %w", err)
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

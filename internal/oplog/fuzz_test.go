package oplog

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"github.com/treedoc/treedoc/internal/ident"
)

// FuzzLogRecord throws arbitrary bytes at the segment scanner as the tail
// segment of a log directory: Open must never panic, must either reject
// the segment or truncate it to a valid prefix, and a second Open of
// whatever the first one left behind must succeed cleanly (recovery is
// idempotent).
func FuzzLogRecord(f *testing.F) {
	f.Add([]byte(segMagic))
	f.Add([]byte(segMagic + "garbage after the header"))
	f.Add([]byte("not a segment at all"))
	f.Add([]byte{})
	// One valid record followed by a torn header.
	valid := []byte(segMagic)
	payload := binary.AppendUvarint(nil, 7)    // site
	payload = binary.AppendUvarint(payload, 3) // seq
	payload = append(payload, "body"...)
	valid = binary.LittleEndian.AppendUint32(valid, uint32(len(payload)))
	valid = binary.LittleEndian.AppendUint32(valid, crc32.ChecksumIEEE(payload))
	valid = append(valid, payload...)
	f.Add(valid)
	f.Add(append(append([]byte(nil), valid...), 0xFF, 0x01))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "000000000000000001.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		n := 0
		if err := l.Replay(func(site ident.SiteID, seq uint64, body []byte) error {
			if site == 0 || site > ident.MaxSiteID || seq == 0 {
				t.Fatalf("replay surfaced invalid stamp s%d#%d", site, seq)
			}
			n++
			return nil
		}); err != nil {
			t.Fatalf("replay of recovered log failed: %v", err)
		}
		if err := l.Append(1, 1, []byte("fresh")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		// Recovery must be idempotent: reopening what recovery produced
		// cannot fail or change the record count.
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("second open failed: %v", err)
		}
		m := 0
		if err := l2.Replay(func(ident.SiteID, uint64, []byte) error { m++; return nil }); err != nil {
			t.Fatalf("second replay: %v", err)
		}
		if m != n+1 {
			t.Fatalf("second open saw %d records, first saw %d(+1)", m, n)
		}
		l2.Close()
	})
}

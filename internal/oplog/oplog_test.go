package oplog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/vclock"
)

type rec struct {
	site ident.SiteID
	seq  uint64
	body []byte
}

func collect(t *testing.T, l *Log) []rec {
	t.Helper()
	var out []rec
	err := l.Replay(func(site ident.SiteID, seq uint64, body []byte) error {
		out = append(out, rec{site, seq, append([]byte(nil), body...)})
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []rec{
		{1, 1, []byte("alpha")},
		{2, 1, []byte("beta")},
		{1, 2, []byte{}},
		{3, 7, bytes.Repeat([]byte{0xAB}, 1000)},
	}
	for _, r := range want {
		if err := l.Append(r.site, r.seq, r.body); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, l)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].site != want[i].site || got[i].seq != want[i].seq || !bytes.Equal(got[i].body, want[i].body) {
			t.Errorf("record %d: got %v want %v", i, got[i], want[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReopenResumesAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, 1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.Append(1, 2, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l2)
	if len(got) != 2 || got[0].seq != 1 || got[1].seq != 2 {
		t.Fatalf("after reopen: %v", got)
	}
}

func TestTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := l.Append(1, uint64(i), []byte(fmt.Sprintf("op-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: chop bytes off the tail record.
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) != 1 {
		t.Fatalf("segments: %v", segs)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0], data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer l2.Close()
	got := collect(t, l2)
	if len(got) != 4 {
		t.Fatalf("replayed %d records after truncation, want 4", len(got))
	}
	// The log must accept fresh appends after recovery.
	if err := l2.Append(1, 5, []byte("op-5-again")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l2); len(got) != 5 {
		t.Fatalf("after re-append: %d records", len(got))
	}
}

func TestCorruptMiddleRecordIsAnError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := l.Append(1, uint64(i), bytes.Repeat([]byte("x"), 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first record's payload: acknowledged bytes
	// were damaged, which reopen must report, not repair.
	data[len(segMagic)+recHdrSize+4] ^= 0xFF
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		return // expected: corruption reported
	}
	// Reopen succeeded only if truncation removed the corrupt record AND
	// everything after it — that would silently drop acknowledged data.
	defer l2.Close()
	if got := collect(t, l2); len(got) >= 3 {
		t.Fatalf("corrupt middle record not detected: %d records", len(got))
	}
	t.Fatalf("reopen of corrupt (non-tail) segment succeeded")
}

func TestSegmentRollAndCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	body := bytes.Repeat([]byte("y"), 48)
	for i := 1; i <= 40; i++ {
		if err := l.Append(2, uint64(i), body); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 3 {
		t.Fatalf("expected several segments, got %d", l.Segments())
	}
	before := l.SizeBytes()

	// Snapshot at seq 30, then compact: every segment whose records are
	// all ≤ 30 must go.
	cutoff := vclock.VC{2: 30}
	if err := l.WriteSnapshot([]byte("snapshot-state"), cutoff); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Compact(cutoff); err != nil {
		t.Fatal(err)
	}
	if l.SizeBytes() >= before {
		t.Fatalf("compaction did not shrink the log: %d -> %d", before, l.SizeBytes())
	}
	// Records above the barrier must survive.
	maxSeq := uint64(0)
	for _, r := range collect(t, l) {
		if r.seq > maxSeq {
			maxSeq = r.seq
		}
	}
	if maxSeq != 40 {
		t.Fatalf("post-compaction max seq = %d, want 40", maxSeq)
	}
	// The stored snapshot must round-trip.
	data, clock, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "snapshot-state" || clock.Get(2) != 30 {
		t.Fatalf("snapshot round-trip: %q %v", data, clock)
	}
}

func TestSnapshotSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, 1, []byte("op")); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot([]byte("state"), vclock.VC{1: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	data, clock, err := l2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "state" || clock.Get(1) != 1 {
		t.Fatalf("snapshot after reopen: %q %v", data, clock)
	}
	if l2.SnapClock().Get(1) != 1 {
		t.Fatalf("snap clock not restored: %v", l2.SnapClock())
	}
}

func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot([]byte("state"), vclock.VC{1: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestAppendRejectsInvalidStamp(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(0, 1, nil); err == nil {
		t.Error("zero site accepted")
	}
	if err := l.Append(1, 0, nil); err == nil {
		t.Error("zero seq accepted")
	}
}

// Package loadstats provides the measurement layer of cmd/treedoc-load:
// a lock-free HDR-style latency histogram and a windowed timeline built
// from it. The load harness records one sample per operation on its
// stamp→deliver path — the wall-clock span between a writer generating an
// edit and another replica applying it — from thousands of concurrent
// goroutines, so recording must be wait-free (a single atomic add) and
// never allocate.
//
// The histogram is log-linear in the HdrHistogram style: values are
// bucketed by power-of-two magnitude, each magnitude subdivided into 32
// linear sub-buckets, giving a worst-case relative quantile error of
// 1/32 ≈ 3.1% across the full uint64 nanosecond range with a fixed
// ~16 KiB footprint. Histograms merge by bucketwise addition, which is
// exact: merging per-worker histograms and recording into one shared
// histogram yield identical quantiles.
//
// Timeline slices a run into fixed-width windows (one histogram each) so
// the harness can ask "when did p99 recover after the chaos event?"
// rather than only reporting end-of-run aggregates.
package loadstats

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBits is the linear subdivision of each power-of-two magnitude:
	// 2^subBits sub-buckets per magnitude bound the relative error of a
	// reported quantile at 2^-subBits.
	subBits = 5
	// subCount is the number of sub-buckets per magnitude.
	subCount = 1 << subBits
	// groups is the number of log magnitudes above the exact range: values
	// below subCount are bucketed exactly, and every wider magnitude
	// (exponents subBits..63) gets subCount linear sub-buckets.
	groups = 64 - subBits
	// numBuckets is the histogram's total bucket count.
	numBuckets = subCount + groups*subCount
)

// Hist is a fixed-size concurrent latency histogram. Record is wait-free
// (one atomic add plus min/max CAS loops) and allocation-free; readers
// (Count, Quantile, Merge, Snapshot) may run concurrently with writers
// and observe a consistent-enough view: bucket counts are each atomically
// read, so a concurrent quantile is a valid quantile of *some* interleaving
// of the recorded samples.
//
// The zero value is not ready for use; call New.
type Hist struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // nanoseconds; wraps only after ~584 years of summed latency
	min    atomic.Uint64
	max    atomic.Uint64
}

// New returns an empty histogram.
func New() *Hist {
	h := &Hist{}
	h.min.Store(^uint64(0))
	return h
}

// bucket maps a nanosecond value to its bucket index. Values below
// subCount are exact; above, the index is the exponent group plus the top
// subBits bits after the leading one.
func bucket(v uint64) int {
	if v < subCount {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // v in [2^exp, 2^(exp+1)), exp >= subBits
	sub := (v >> (uint(exp) - subBits)) & (subCount - 1)
	return (exp-subBits+1)*subCount + int(sub)
}

// bucketHigh returns the highest value mapping to bucket i — the value
// Quantile reports for samples in that bucket (matching HdrHistogram's
// highest-equivalent-value convention, so a reported quantile never
// understates the recorded sample by more than the bucket width).
func bucketHigh(i int) uint64 {
	if i < subCount {
		return uint64(i)
	}
	g := i/subCount - 1 // 0-based group above the exact range
	sub := uint64(i % subCount)
	exp := uint(g) + subBits
	low := uint64(1)<<exp | sub<<(exp-subBits)
	return low + 1<<(exp-subBits) - 1
}

// Record adds one latency sample. Negative durations (a clock step mid
// run) clamp to zero rather than poisoning the distribution.
func (h *Hist) Record(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.counts[bucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Min returns the smallest recorded sample (0 when empty).
func (h *Hist) Min() time.Duration {
	if h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.min.Load())
}

// Max returns the largest recorded sample (0 when empty).
func (h *Hist) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the arithmetic mean of the recorded samples (0 when
// empty). Unlike the quantiles it is exact, not bucketed.
func (h *Hist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns the q-quantile (q in [0,1]) of the recorded samples:
// the bucketed value below which at least q of the samples fall, within
// the histogram's ~3% relative error. Empty histograms return 0; q<=0
// returns Min and q>=1 returns Max (both exact).
func (h *Hist) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := uint64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen uint64
	for i := 0; i < numBuckets; i++ {
		seen += h.counts[i].Load()
		if seen > rank {
			v := bucketHigh(i)
			// Highest-equivalent-value can overstate past the true max in
			// the top occupied bucket; the exact max is the tighter bound.
			if mx := h.max.Load(); v > mx {
				v = mx
			}
			return time.Duration(v)
		}
	}
	return h.Max() // racing writers advanced count past the buckets read
}

// Merge adds every sample recorded in o into h. Merging is exact — the
// result is indistinguishable from having recorded o's samples into h —
// and safe to run concurrently with writers on either histogram.
func (h *Hist) Merge(o *Hist) {
	if o == nil {
		return
	}
	for i := 0; i < numBuckets; i++ {
		if c := o.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	if c := o.count.Load(); c > 0 {
		h.count.Add(c)
		h.sum.Add(o.sum.Load())
		for {
			om, cur := o.min.Load(), h.min.Load()
			if om >= cur || h.min.CompareAndSwap(cur, om) {
				break
			}
		}
		for {
			om, cur := o.max.Load(), h.max.Load()
			if om <= cur || h.max.CompareAndSwap(cur, om) {
				break
			}
		}
	}
}

// Snapshot returns an independent copy of the histogram's current state.
func (h *Hist) Snapshot() *Hist {
	s := New()
	s.Merge(h)
	return s
}

// Timeline slices a run into fixed-width windows, one histogram per
// window, so quantiles can be read per second (or any width) instead of
// only end-of-run. Recording is lock-free; samples past the preallocated
// horizon land in the final window rather than being dropped, so totals
// across windows always match the run's sample count.
type Timeline struct {
	start time.Time
	width time.Duration
	wins  []*Hist
}

// NewTimeline creates a timeline of n windows of the given width,
// starting now.
func NewTimeline(width time.Duration, n int) *Timeline {
	if width <= 0 {
		width = time.Second
	}
	if n < 1 {
		n = 1
	}
	t := &Timeline{start: time.Now(), width: width, wins: make([]*Hist, n)}
	for i := range t.wins {
		t.wins[i] = New()
	}
	return t
}

// Record adds a sample to the window containing time at.
func (t *Timeline) Record(at time.Time, d time.Duration) {
	i := int(at.Sub(t.start) / t.width)
	if i < 0 {
		i = 0
	}
	if i >= len(t.wins) {
		i = len(t.wins) - 1
	}
	t.wins[i].Record(d)
}

// Len returns the number of windows.
func (t *Timeline) Len() int { return len(t.wins) }

// Width returns the window width.
func (t *Timeline) Width() time.Duration { return t.width }

// Start returns the timeline's epoch (window 0 begins here).
func (t *Timeline) Start() time.Time { return t.start }

// Window returns the histogram for window i.
func (t *Timeline) Window(i int) *Hist { return t.wins[i] }

// WindowAt returns the index of the window containing time at, clamped
// to the timeline's range.
func (t *Timeline) WindowAt(at time.Time) int {
	i := int(at.Sub(t.start) / t.width)
	if i < 0 {
		i = 0
	}
	if i >= len(t.wins) {
		i = len(t.wins) - 1
	}
	return i
}

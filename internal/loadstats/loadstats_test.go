package loadstats

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// refQuantile is the plain sorted-slice quantile the histogram is checked
// against.
func refQuantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// within asserts the histogram quantile is inside the log-linear error
// envelope of the reference: the bucket containing ref spans at most
// ref/32 (plus one for integer rounding), and highest-equivalent-value
// reporting can only overstate.
func within(t *testing.T, name string, got, ref time.Duration) {
	t.Helper()
	tol := time.Duration(float64(ref)/16) + 2
	if got < ref-tol || got > ref+tol {
		t.Errorf("%s: got %v, reference %v (tolerance %v)", name, got, ref, tol)
	}
}

func TestQuantileAgainstSortedReference(t *testing.T) {
	dists := map[string]func(r *rand.Rand) time.Duration{
		// Uniform microseconds-to-milliseconds.
		"uniform": func(r *rand.Rand) time.Duration {
			return time.Duration(r.Int63n(int64(5 * time.Millisecond)))
		},
		// Long-tailed: mostly fast with a slow tail, the shape a relay
		// fleet actually produces.
		"longtail": func(r *rand.Rand) time.Duration {
			d := time.Duration(r.Int63n(int64(2 * time.Millisecond)))
			if r.Intn(100) == 0 {
				d += time.Duration(r.Int63n(int64(800 * time.Millisecond)))
			}
			return d
		},
		// Tiny values exercise the exact sub-subCount range.
		"tiny": func(r *rand.Rand) time.Duration {
			return time.Duration(r.Int63n(40))
		},
	}
	for name, gen := range dists {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			h := New()
			samples := make([]time.Duration, 0, 20000)
			for i := 0; i < 20000; i++ {
				d := gen(r)
				samples = append(samples, d)
				h.Record(d)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			if h.Count() != 20000 {
				t.Fatalf("count = %d, want 20000", h.Count())
			}
			if h.Min() != samples[0] {
				t.Errorf("min = %v, want %v", h.Min(), samples[0])
			}
			if h.Max() != samples[len(samples)-1] {
				t.Errorf("max = %v, want %v", h.Max(), samples[len(samples)-1])
			}
			for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
				within(t, name, h.Quantile(q), refQuantile(samples, q))
			}
		})
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	h := New()
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram should report zeros")
	}
	h.Record(7 * time.Millisecond)
	if got := h.Quantile(0.5); got < 7*time.Millisecond || got > 7*time.Millisecond+7*time.Millisecond/32+1 {
		t.Errorf("single-sample median = %v", got)
	}
	if h.Quantile(0) != 7*time.Millisecond {
		t.Errorf("q=0 should be exact min, got %v", h.Quantile(0))
	}
	if h.Quantile(1) != 7*time.Millisecond {
		t.Errorf("q=1 should be exact max, got %v", h.Quantile(1))
	}
	h.Record(-time.Second) // clock step: clamps to zero, never corrupts
	if h.Count() != 2 || h.Min() != 0 {
		t.Errorf("negative sample: count=%d min=%v", h.Count(), h.Min())
	}
}

// TestMergeExact verifies merging per-worker histograms is
// indistinguishable from recording into one shared histogram.
func TestMergeExact(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	shared := New()
	parts := []*Hist{New(), New(), New()}
	for i := 0; i < 30000; i++ {
		d := time.Duration(r.Int63n(int64(200 * time.Millisecond)))
		shared.Record(d)
		parts[i%len(parts)].Record(d)
	}
	merged := New()
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != shared.Count() {
		t.Fatalf("merged count %d != shared %d", merged.Count(), shared.Count())
	}
	if merged.Min() != shared.Min() || merged.Max() != shared.Max() || merged.Mean() != shared.Mean() {
		t.Errorf("merged min/max/mean %v/%v/%v != shared %v/%v/%v",
			merged.Min(), merged.Max(), merged.Mean(), shared.Min(), shared.Max(), shared.Mean())
	}
	for q := 0.01; q < 1; q += 0.07 {
		if m, s := merged.Quantile(q), shared.Quantile(q); m != s {
			t.Errorf("q=%.2f: merged %v != shared %v", q, m, s)
		}
	}
	// Merging an empty or nil histogram is a no-op.
	before := merged.Count()
	merged.Merge(New())
	merged.Merge(nil)
	if merged.Count() != before {
		t.Errorf("empty merge changed count")
	}
}

// TestConcurrentRecord drives Record and readers from many goroutines;
// under -race this is the lock-freedom proof, and the final count must be
// exact regardless.
func TestConcurrentRecord(t *testing.T) {
	h := New()
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader: quantiles must stay valid mid-flight
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = h.Quantile(0.99)
			_ = h.Snapshot()
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.Record(time.Duration(r.Int63n(int64(50 * time.Millisecond))))
			}
		}(int64(w))
	}
	for h.Count() < workers*perWorker {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if h.Count() != workers*perWorker {
		t.Fatalf("count = %d, want %d", h.Count(), workers*perWorker)
	}
	var sum uint64
	for i := 0; i < numBuckets; i++ {
		sum += h.counts[i].Load()
	}
	if sum != workers*perWorker {
		t.Fatalf("bucket sum = %d, want %d", sum, workers*perWorker)
	}
}

func TestBucketRoundTrip(t *testing.T) {
	// Every bucket's reported value must map back into that bucket, and
	// bucket indexes must be monotone in the value.
	for i := 0; i < numBuckets; i++ {
		v := bucketHigh(i)
		if got := bucket(v); got != i {
			t.Fatalf("bucket(bucketHigh(%d)=%d) = %d", i, v, got)
		}
	}
	prev := -1
	for _, v := range []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1 << 20, 1<<20 + 12345, 1 << 40, ^uint64(0)} {
		b := bucket(v)
		if b < prev {
			t.Fatalf("bucket(%d) = %d not monotone (prev %d)", v, b, prev)
		}
		if b >= numBuckets {
			t.Fatalf("bucket(%d) = %d out of range", v, b)
		}
		prev = b
	}
}

func TestTimeline(t *testing.T) {
	tl := NewTimeline(10*time.Millisecond, 5)
	base := tl.Start()
	tl.Record(base, time.Millisecond)
	tl.Record(base.Add(25*time.Millisecond), 2*time.Millisecond)
	tl.Record(base.Add(49*time.Millisecond), 3*time.Millisecond)
	tl.Record(base.Add(time.Hour), 4*time.Millisecond)    // past horizon: last window
	tl.Record(base.Add(-time.Second), 5*time.Millisecond) // before start: first window
	if tl.Len() != 5 || tl.Width() != 10*time.Millisecond {
		t.Fatalf("len=%d width=%v", tl.Len(), tl.Width())
	}
	var total uint64
	for i := 0; i < tl.Len(); i++ {
		total += tl.Window(i).Count()
	}
	if total != 5 {
		t.Fatalf("samples across windows = %d, want 5", total)
	}
	if tl.Window(0).Count() != 2 || tl.Window(2).Count() != 1 || tl.Window(4).Count() != 2 {
		t.Errorf("window distribution: %d/%d/%d", tl.Window(0).Count(), tl.Window(2).Count(), tl.Window(4).Count())
	}
	if got := tl.WindowAt(base.Add(25 * time.Millisecond)); got != 2 {
		t.Errorf("WindowAt = %d, want 2", got)
	}
}

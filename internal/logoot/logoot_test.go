package logoot

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/treedoc/treedoc/internal/ident"
)

func newDoc(t *testing.T, site ident.SiteID) *Doc {
	t.Helper()
	d, err := New(Config{Site: site})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func docString(d *Doc) string { return strings.Join(d.Content(), "") }

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Site: 0}); err == nil {
		t.Error("site 0 accepted")
	}
	if _, err := New(Config{Site: ident.MaxSiteID + 1}); err == nil {
		t.Error("oversized site accepted")
	}
}

func TestComponentCompare(t *testing.T) {
	tests := []struct {
		a, b Component
		want int
	}{
		{Component{1, 1}, Component{1, 1}, 0},
		{Component{1, 1}, Component{2, 1}, -1},
		{Component{1, 9}, Component{2, 1}, -1},
		{Component{1, 1}, Component{1, 2}, -1},
	}
	for _, tt := range tests {
		if got := tt.a.Compare(tt.b); got != tt.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
		if got := tt.b.Compare(tt.a); got != -tt.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", tt.b, tt.a, got, -tt.want)
		}
	}
}

func TestPositionCompare(t *testing.T) {
	p := Position{{5, 1}}
	q := Position{{5, 1}, {3, 2}}
	if Compare(p, q) != -1 || Compare(q, p) != +1 {
		t.Error("prefix must sort before its extension")
	}
	if Compare(p, p) != 0 {
		t.Error("equal positions")
	}
	if got := p.String(); got != "<5.s1>" {
		t.Errorf("String = %q", got)
	}
	if q.Bits() != 160 {
		t.Errorf("Bits = %d", q.Bits())
	}
}

func TestEditingSequence(t *testing.T) {
	d := newDoc(t, 1)
	for i, a := range []string{"a", "b", "c", "d"} {
		if _, err := d.InsertAt(i, a); err != nil {
			t.Fatal(err)
		}
	}
	if docString(d) != "abcd" {
		t.Fatalf("doc = %q", docString(d))
	}
	if _, err := d.InsertAt(2, "X"); err != nil {
		t.Fatal(err)
	}
	if docString(d) != "abXcd" {
		t.Errorf("doc = %q", docString(d))
	}
	if _, err := d.DeleteAt(0); err != nil {
		t.Fatal(err)
	}
	if docString(d) != "bXcd" {
		t.Errorf("doc = %q", docString(d))
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.InsertAt(99, "x"); err == nil {
		t.Error("out-of-range insert succeeded")
	}
	if _, err := d.DeleteAt(99); err == nil {
		t.Error("out-of-range delete succeeded")
	}
}

func TestDeleteRemovesImmediately(t *testing.T) {
	d := newDoc(t, 1)
	for i := 0; i < 10; i++ {
		if _, err := d.InsertAt(i, "x"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 9; i >= 0; i-- {
		if _, err := d.DeleteAt(i); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if s.LiveAtoms != 0 || s.TotalIDBits != 0 {
		t.Errorf("deleted doc keeps overhead: %+v (Logoot has no tombstones)", s)
	}
}

func TestConvergenceConcurrent(t *testing.T) {
	a, b := newDoc(t, 1), newDoc(t, 2)
	var hist []Op
	for i, atom := range []string{"a", "b", "c"} {
		op, err := a.InsertAt(i, atom)
		if err != nil {
			t.Fatal(err)
		}
		hist = append(hist, op)
	}
	for _, op := range hist {
		if err := b.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	opA, err := a.InsertAt(1, "X")
	if err != nil {
		t.Fatal(err)
	}
	opB, err := b.InsertAt(1, "Y")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Apply(opB); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(opA); err != nil {
		t.Fatal(err)
	}
	if docString(a) != docString(b) {
		t.Errorf("diverged: %q vs %q", docString(a), docString(b))
	}
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestConvergenceRandom(t *testing.T) {
	const sites = 3
	rng := rand.New(rand.NewSource(5))
	docs := make([]*Doc, sites)
	for i := range docs {
		docs[i] = newDoc(t, ident.SiteID(i+1))
	}
	hist := make([][]Op, sites)
	seen := make([]int, sites)
	for round := 0; round < 15; round++ {
		for i, d := range docs {
			for e := 0; e < 1+rng.Intn(3); e++ {
				if d.Len() == 0 || rng.Intn(100) < 70 {
					op, err := d.InsertAt(rng.Intn(d.Len()+1), fmt.Sprintf("s%dr%d", i, round))
					if err != nil {
						t.Fatal(err)
					}
					hist[i] = append(hist[i], op)
				} else {
					op, err := d.DeleteAt(rng.Intn(d.Len()))
					if err != nil {
						t.Fatal(err)
					}
					hist[i] = append(hist[i], op)
				}
			}
		}
		marks := make([]int, sites)
		for i := range hist {
			marks[i] = len(hist[i])
		}
		for i, d := range docs {
			for _, j := range rng.Perm(sites) {
				if j == i {
					continue
				}
				for k := seen[j]; k < marks[j]; k++ {
					if err := d.Apply(hist[j][k]); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		copy(seen, marks)
	}
	want := docString(docs[0])
	for i, d := range docs {
		if docString(d) != want {
			t.Fatalf("site %d diverged", i)
		}
		if err := d.Check(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSparseAllocationGrowth: appends mostly stay at one layer thanks to
// sparse digit allocation; dense middle inserts grow layers — the behaviour
// the Treedoc paper contrasts in Section 5.3.
func TestSparseAllocationGrowth(t *testing.T) {
	d := newDoc(t, 1)
	for i := 0; i < 200; i++ {
		if _, err := d.InsertAt(i, "x"); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if got := s.AvgIDBits(); got > 2*ComponentBits {
		t.Errorf("append-only avg id = %v bits, want <= %d (sparse allocation)", got, 2*ComponentBits)
	}
	// Hammer one gap: identifiers must deepen (no free digits remain).
	e := newDoc(t, 1)
	if _, err := e.InsertAt(0, "L"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.InsertAt(1, "R"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := e.InsertAt(1, "m"); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().MaxIDBits; got <= ComponentBits {
		t.Errorf("dense middle inserts never grew layers: max %d bits", got)
	}
}

func TestNetworkBits(t *testing.T) {
	op := Op{Kind: OpInsert, ID: Position{{1, 1}, {2, 2}}, Atom: "ab"}
	if got := op.NetworkBits(); got != 2*ComponentBits+16 {
		t.Errorf("insert bits = %d", got)
	}
	del := Op{Kind: OpDelete, ID: Position{{1, 1}}}
	if got := del.NetworkBits(); got != ComponentBits {
		t.Errorf("delete bits = %d", got)
	}
}

func TestApplyIdempotent(t *testing.T) {
	d := newDoc(t, 1)
	op, err := d.InsertAt(0, "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(op); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Errorf("duplicate insert changed state: len=%d", d.Len())
	}
	del, err := d.DeleteAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(del); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Errorf("len = %d", d.Len())
	}
	if err := d.Apply(Op{Kind: OpInsert}); err == nil {
		t.Error("empty id accepted")
	}
}

func TestAllocStressBetween(t *testing.T) {
	d := newDoc(t, 1)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		gap := 0
		if d.Len() > 0 {
			gap = rng.Intn(d.Len() + 1)
		}
		if _, err := d.InsertAt(gap, "x"); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

// Package logoot implements the Logoot CRDT for cooperative editing
// (Weiss, Urso, Molli, ICDCS 2009), the baseline the Treedoc paper compares
// against in Section 5.3.
//
// A Logoot position identifier is a sequence of fixed-size unique
// components ordered lexicographically; the Treedoc paper's comparison uses
// 10-byte components (a 4-byte digit and a 6-byte site identifier, the same
// size as a Treedoc UDIS disambiguator). Logoot "allocates position
// identifiers sparsely in order to facilitate insertions": when a free
// digit exists between the neighbours' digits at some depth it is used,
// otherwise the left identifier is extended with an additional layer.
// Deleted atoms are removed immediately — no tombstones — but identifiers
// are never compacted: "Logoot does not flatten".
package logoot

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"github.com/treedoc/treedoc/internal/ident"
)

// Component is one layer of a Logoot position identifier: a digit and the
// allocating site. On the wire it is DigitBytes+SiteBytes = 10 bytes, the
// size used in the paper's Table 5 comparison.
type Component struct {
	Digit uint32
	Site  ident.SiteID
}

// ComponentBits is the size of one component under the paper's model:
// 10 bytes (4-byte digit + 6-byte site), equal to a UDIS disambiguator.
const ComponentBits = 8 * 10

// Compare orders components by digit, then site.
func (c Component) Compare(o Component) int {
	switch {
	case c.Digit < o.Digit:
		return -1
	case c.Digit > o.Digit:
		return +1
	case c.Site < o.Site:
		return -1
	case c.Site > o.Site:
		return +1
	}
	return 0
}

// Position is a Logoot position identifier. Positions are compared
// lexicographically component by component; a proper prefix sorts first.
type Position []Component

// Compare returns -1, 0 or +1.
func Compare(p, q Position) int {
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	for i := 0; i < n; i++ {
		if c := p[i].Compare(q[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(p) < len(q):
		return -1
	case len(p) > len(q):
		return +1
	}
	return 0
}

// Bits returns the identifier size in bits: 80 per component.
func (p Position) Bits() int { return len(p) * ComponentBits }

// String renders the position for debugging, e.g. "<5.s1|3.s2>".
func (p Position) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, c := range p {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%d.s%d", c.Digit, c.Site)
	}
	b.WriteByte('>')
	return b.String()
}

// Clone returns an independent copy.
func (p Position) Clone() Position {
	q := make(Position, len(p))
	copy(q, p)
	return q
}

// OpKind distinguishes Logoot operations.
type OpKind uint8

const (
	// OpInsert inserts an atom at a fresh position.
	OpInsert OpKind = iota + 1
	// OpDelete removes the atom at a position (idempotent).
	OpDelete
)

// Op is a replicable Logoot edit.
type Op struct {
	Kind OpKind
	ID   Position
	Atom string
	Site ident.SiteID
	Seq  uint64
}

// Config parameterises a Logoot replica.
type Config struct {
	// Site is the replica identifier (non-zero).
	Site ident.SiteID
	// MaxDigit bounds the digit space of one layer: digits lie in
	// [1, MaxDigit]. The original Logoot evaluation uses a small base
	// (2^15-1, the default here); identifiers grow additional layers when a
	// layer's local digit gap is exhausted, which is what the Treedoc
	// paper's Table 5 measures. The wire size of a component stays 10 bytes
	// regardless (ComponentBits), as in the paper's comparison.
	MaxDigit uint32
	// Boundary caps the random digit step when a layer is unconstrained
	// above; sparse allocation leaves room for future inserts (Logoot's
	// "boundary" strategy). Default 100.
	Boundary uint32
	// Seed makes allocation deterministic for reproducible benchmarks; the
	// zero seed is replaced by the site id.
	Seed int64
}

// Doc is one Logoot replica: the document as a sorted list of
// (position, atom) pairs. Not safe for concurrent use.
type Doc struct {
	cfg   Config
	ids   []Position
	atoms []string
	seq   uint64
	rng   *rand.Rand

	opsApplied uint64
	netBits    uint64
}

// New creates an empty Logoot replica.
func New(cfg Config) (*Doc, error) {
	if cfg.Site == 0 || cfg.Site > ident.MaxSiteID {
		return nil, fmt.Errorf("logoot: site must be in [1, 2^48); got %d", cfg.Site)
	}
	if cfg.MaxDigit == 0 {
		cfg.MaxDigit = 1<<15 - 1
	}
	if cfg.Boundary == 0 {
		cfg.Boundary = 100
	}
	if cfg.Boundary > cfg.MaxDigit {
		cfg.Boundary = cfg.MaxDigit
	}
	if cfg.Seed == 0 {
		cfg.Seed = int64(cfg.Site)
	}
	return &Doc{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Len returns the number of atoms.
func (d *Doc) Len() int { return len(d.atoms) }

// Content returns the atoms in document order.
func (d *Doc) Content() []string {
	out := make([]string, len(d.atoms))
	copy(out, d.atoms)
	return out
}

// search returns the index of the first position >= p.
func (d *Doc) search(p Position) int {
	return sort.Search(len(d.ids), func(i int) bool { return Compare(d.ids[i], p) >= 0 })
}

// alloc builds a fresh position strictly between p and q (nil = document
// boundary), following the allocation the Treedoc paper describes for its
// comparison (Section 5.3): "Logoot allocates a free unique identifier
// ordered between the left and right position identifiers, if one exists;
// otherwise it extends the identifier of the left position with an
// additional layer". Extending the full left identifier makes dense insert
// runs pay one 10-byte component per atom — the overhead behaviour Table 5
// measures. (Later Logoot variants allocate within the subspace below the
// divergence point instead; the safe-descent fallback below covers the edge
// case where extending p could overshoot q.)
func (d *Doc) alloc(p, q Position) Position {
	prefix := make(Position, 0, 4)
	qActive := q != nil
	for i := 0; ; i++ {
		var pc Component
		if i < len(p) {
			pc = p[i]
		}
		if qActive && i < len(q) {
			qc := q[i]
			if gap := int64(qc.Digit) - int64(pc.Digit); gap > 1 {
				step := gap - 1
				if step > int64(d.cfg.Boundary) {
					step = int64(d.cfg.Boundary)
				}
				digit := pc.Digit + 1 + uint32(d.rng.Int63n(step))
				return append(prefix, Component{Digit: digit, Site: d.cfg.Site})
			}
			cmp := pc.Compare(qc)
			if cmp < 0 && i < len(p) {
				// No free digit at the divergence layer: extend the left
				// identifier with an additional layer. p+x < q because they
				// already diverge at layer i with p[i] < q[i].
				out := append(p.Clone(), Component{
					Digit: 1 + uint32(d.rng.Int63n(int64(d.cfg.Boundary))),
					Site:  d.cfg.Site,
				})
				return out
			}
			prefix = append(prefix, pc)
			if cmp < 0 {
				// p exhausted and the next q digit leaves no room: descend
				// into the subspace below the shared prefix, dropping the
				// upper bound (everything there sorts before q).
				qActive = false
			}
			continue
		}
		if qActive && i >= len(q) {
			// q is a prefix of p, impossible for p < q; defensive fallback.
			qActive = false
		}
		// Only the lower bound constrains this layer: digits run up to
		// MaxDigit.
		maxStep := int64(d.cfg.Boundary)
		if room := int64(d.cfg.MaxDigit) - int64(pc.Digit); room < maxStep {
			maxStep = room
		}
		if maxStep < 1 {
			// Digit space exhausted at this layer: descend.
			prefix = append(prefix, pc)
			continue
		}
		digit := pc.Digit + 1 + uint32(d.rng.Int63n(maxStep))
		return append(prefix, Component{Digit: digit, Site: d.cfg.Site})
	}
}

// InsertAt inserts atom at index i as a local edit, returning the op.
func (d *Doc) InsertAt(i int, atom string) (Op, error) {
	if i < 0 || i > len(d.atoms) {
		return Op{}, fmt.Errorf("logoot: index %d out of range [0,%d]", i, len(d.atoms))
	}
	var p, q Position
	if i > 0 {
		p = d.ids[i-1]
	}
	if i < len(d.ids) {
		q = d.ids[i]
	}
	id := d.alloc(p, q)
	if p != nil && Compare(p, id) >= 0 || q != nil && Compare(id, q) >= 0 {
		return Op{}, fmt.Errorf("logoot: allocated %v outside (%v, %v)", id, p, q)
	}
	d.seq++
	op := Op{Kind: OpInsert, ID: id, Atom: atom, Site: d.cfg.Site, Seq: d.seq}
	d.apply(op)
	return op, nil
}

// DeleteAt removes the atom at index i as a local edit, returning the op.
func (d *Doc) DeleteAt(i int) (Op, error) {
	if i < 0 || i >= len(d.atoms) {
		return Op{}, fmt.Errorf("logoot: index %d out of range [0,%d)", i, len(d.atoms))
	}
	d.seq++
	op := Op{Kind: OpDelete, ID: d.ids[i].Clone(), Site: d.cfg.Site, Seq: d.seq}
	d.apply(op)
	return op, nil
}

// Apply replays a remote operation (causal delivery assumed, as for
// Treedoc).
func (d *Doc) Apply(op Op) error {
	if len(op.ID) == 0 {
		return fmt.Errorf("logoot: empty position")
	}
	d.apply(op)
	return nil
}

func (d *Doc) apply(op Op) {
	d.opsApplied++
	d.netBits += uint64(op.NetworkBits())
	i := d.search(op.ID)
	switch op.Kind {
	case OpInsert:
		if i < len(d.ids) && Compare(d.ids[i], op.ID) == 0 {
			return // duplicate insert: idempotent no-op
		}
		d.ids = append(d.ids, nil)
		copy(d.ids[i+1:], d.ids[i:])
		d.ids[i] = op.ID
		d.atoms = append(d.atoms, "")
		copy(d.atoms[i+1:], d.atoms[i:])
		d.atoms[i] = op.Atom
	case OpDelete:
		if i >= len(d.ids) || Compare(d.ids[i], op.ID) != 0 {
			return // already deleted: idempotent
		}
		d.ids = append(d.ids[:i], d.ids[i+1:]...)
		d.atoms = append(d.atoms[:i], d.atoms[i+1:]...)
	}
}

// NetworkBits returns the operation's network cost under the paper's model.
func (o Op) NetworkBits() int {
	bits := o.ID.Bits()
	if o.Kind == OpInsert {
		bits += 8 * len(o.Atom)
	}
	return bits
}

// Stats reports the identifier overheads used in Table 5.
type Stats struct {
	LiveAtoms   int
	DocBytes    int
	TotalIDBits int
	MaxIDBits   int
	NetBits     uint64
	OpsApplied  uint64
}

// AvgIDBits is the mean identifier size over live atoms.
func (s Stats) AvgIDBits() float64 {
	if s.LiveAtoms == 0 {
		return 0
	}
	return float64(s.TotalIDBits) / float64(s.LiveAtoms)
}

// Stats measures the replica.
func (d *Doc) Stats() Stats {
	s := Stats{LiveAtoms: len(d.atoms), NetBits: d.netBits, OpsApplied: d.opsApplied}
	for i, id := range d.ids {
		b := id.Bits()
		s.TotalIDBits += b
		if b > s.MaxIDBits {
			s.MaxIDBits = b
		}
		s.DocBytes += len(d.atoms[i])
	}
	return s
}

// Check verifies the internal order invariant (tests).
func (d *Doc) Check() error {
	if len(d.ids) != len(d.atoms) {
		return fmt.Errorf("logoot: %d ids vs %d atoms", len(d.ids), len(d.atoms))
	}
	for i := 1; i < len(d.ids); i++ {
		if Compare(d.ids[i-1], d.ids[i]) >= 0 {
			return fmt.Errorf("logoot: ids out of order at %d: %v >= %v", i, d.ids[i-1], d.ids[i])
		}
	}
	return nil
}

package vclock

import (
	"testing"
	"testing/quick"

	"github.com/treedoc/treedoc/internal/ident"
)

func TestTickGetClone(t *testing.T) {
	v := New()
	if v.Get(1) != 0 {
		t.Error("fresh clock not zero")
	}
	if v.Tick(1) != 1 || v.Tick(1) != 2 || v.Tick(2) != 1 {
		t.Error("tick sequence wrong")
	}
	c := v.Clone()
	c.Tick(1)
	if v.Get(1) != 2 {
		t.Error("clone aliases original")
	}
}

func TestMergeDominates(t *testing.T) {
	a := VC{1: 3, 2: 1}
	b := VC{1: 1, 2: 4, 3: 2}
	a.Merge(b)
	want := VC{1: 3, 2: 4, 3: 2}
	for s, n := range want {
		if a[s] != n {
			t.Errorf("merged[%d] = %d, want %d", s, a[s], n)
		}
	}
	if !a.Dominates(b) {
		t.Error("merged clock must dominate both inputs")
	}
	if b.Dominates(a) {
		t.Error("b must not dominate merged")
	}
	if !(VC{}).Dominates(VC{}) || !a.Dominates(nil) {
		t.Error("empty-clock domination broken")
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		name string
		a, b VC
		want Relation
	}{
		{"equal empty", VC{}, VC{}, Equal},
		{"equal", VC{1: 2}, VC{1: 2}, Equal},
		{"before", VC{1: 1}, VC{1: 2}, Before},
		{"after", VC{1: 2, 2: 1}, VC{1: 2}, After},
		{"concurrent", VC{1: 1}, VC{2: 1}, Concurrent},
	}
	for _, tt := range tests {
		if got := tt.a.Compare(tt.b); got != tt.want {
			t.Errorf("%s: Compare = %v, want %v", tt.name, got, tt.want)
		}
	}
	if Concurrent.String() != "concurrent" || Equal.String() != "equal" ||
		Before.String() != "before" || After.String() != "after" {
		t.Error("relation names wrong")
	}
}

func TestString(t *testing.T) {
	v := VC{ident.SiteID(2): 1, ident.SiteID(1): 3}
	if got := v.String(); got != "{s1:3 s2:1}" {
		t.Errorf("String = %q", got)
	}
}

func TestMergeIdempotentCommutative(t *testing.T) {
	f := func(a, b map[uint8]uint8) bool {
		va, vb := New(), New()
		for s, n := range a {
			va[ident.SiteID(s)+1] = uint64(n)
		}
		for s, n := range b {
			vb[ident.SiteID(s)+1] = uint64(n)
		}
		m1 := va.Clone()
		m1.Merge(vb)
		m2 := vb.Clone()
		m2.Merge(va)
		m3 := m1.Clone()
		m3.Merge(vb) // idempotent
		return m1.Compare(m2) == Equal && m1.Compare(m3) == Equal &&
			m1.Dominates(va) && m1.Dominates(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

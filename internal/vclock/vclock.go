// Package vclock implements vector clocks for tracking the happened-before
// relation of Lamport, which the Treedoc paper adopts verbatim: "Our
// happened-before and concurrency relations are identical to the formal
// definition of Lamport" (Section 1, footnote 1). The causal delivery layer
// (internal/causal) and the flatten commitment protocol (internal/commit)
// build on these clocks.
package vclock

import (
	"encoding/binary"
	"fmt"
	"slices"
	"strings"

	"github.com/treedoc/treedoc/internal/ident"
)

// VC is a vector clock: per-site counts of known operations. The zero value
// (nil) is a valid empty clock.
type VC map[ident.SiteID]uint64

// Relation is the outcome of comparing two vector clocks.
type Relation int

const (
	// Equal means both clocks describe the same causal history.
	Equal Relation = iota
	// Before means the receiver happened-before the argument.
	Before
	// After means the argument happened-before the receiver.
	After
	// Concurrent means neither dominates: the histories are concurrent.
	Concurrent
)

// String names the relation.
func (r Relation) String() string {
	switch r {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// New returns an empty clock.
func New() VC { return make(VC) }

// Get returns the count for site s (zero when absent).
func (v VC) Get(s ident.SiteID) uint64 { return v[s] }

// Tick increments site s's entry and returns the new value.
func (v VC) Tick(s ident.SiteID) uint64 {
	v[s]++
	return v[s]
}

// Clone returns an independent copy.
func (v VC) Clone() VC {
	out := make(VC, len(v))
	for s, n := range v {
		out[s] = n
	}
	return out
}

// Merge folds o into v entry-wise (pointwise maximum).
func (v VC) Merge(o VC) {
	for s, n := range o {
		if n > v[s] {
			v[s] = n
		}
	}
}

// Dominates reports whether v ≥ o entry-wise: every operation known to o is
// known to v.
func (v VC) Dominates(o VC) bool {
	for s, n := range o {
		if v[s] < n {
			return false
		}
	}
	return true
}

// Compare classifies the causal relation between v and o.
func (v VC) Compare(o VC) Relation {
	vDom, oDom := v.Dominates(o), o.Dominates(v)
	switch {
	case vDom && oDom:
		return Equal
	case oDom:
		return Before
	case vDom:
		return After
	default:
		return Concurrent
	}
}

// String renders the clock deterministically (sites in ascending order).
func (v VC) String() string {
	sites := make([]ident.SiteID, 0, len(v))
	for s := range v {
		sites = append(sites, s)
	}
	slices.Sort(sites)
	var b strings.Builder
	b.WriteByte('{')
	for i, s := range sites {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "s%d:%d", s, v[s])
	}
	b.WriteByte('}')
	return b.String()
}

// AppendBinary appends the canonical encoding of v: a uvarint entry
// count, then (site, count) uvarint pairs with sites ascending, zero
// entries omitted. The same layout is shared by the transport wire
// format, the oplog snapshot header, and the document snapshot format.
//
//treedoc:noalloc
func (v VC) AppendBinary(dst []byte) []byte {
	// The site list lives on the stack and is sorted without sort.Slice:
	// this encoder runs once per op in every frame and oplog record, and
	// the slice-plus-closure pair it used to allocate was the last per-op
	// heap cost of the encode path. Clocks bigger than the stack buffer
	// (rare: that many sites in one document) fall back to the heap.
	var stack [16]ident.SiteID
	sites := stack[:0]
	for s, n := range v {
		if n > 0 {
			sites = append(sites, s)
		}
	}
	slices.Sort(sites)
	dst = binary.AppendUvarint(dst, uint64(len(sites)))
	for _, s := range sites {
		dst = binary.AppendUvarint(dst, uint64(s))
		dst = binary.AppendUvarint(dst, v[s])
	}
	return dst
}

// DecodeBinary decodes a clock from the front of buf, returning the bytes
// consumed. Entries are validated (site in range and non-zero count) and
// the entry count is bounded by maxEntries and by the remaining buffer,
// so a hostile count cannot force a large allocation.
func DecodeBinary(buf []byte, maxEntries int) (VC, int, error) {
	n, off := binary.Uvarint(buf)
	if off <= 0 {
		return nil, 0, fmt.Errorf("vclock: truncated clock size")
	}
	if maxEntries >= 0 && n > uint64(maxEntries) {
		return nil, 0, fmt.Errorf("vclock: clock with %d entries exceeds limit", n)
	}
	// Each entry costs at least two bytes; bound before allocating.
	if n > uint64(len(buf)-off) {
		return nil, 0, fmt.Errorf("vclock: clock entry count %d exceeds buffer", n)
	}
	vc := make(VC, n)
	for i := uint64(0); i < n; i++ {
		site, k := binary.Uvarint(buf[off:])
		if k <= 0 {
			return nil, 0, fmt.Errorf("vclock: truncated clock site")
		}
		off += k
		if site == 0 || ident.SiteID(site) > ident.MaxSiteID {
			return nil, 0, fmt.Errorf("vclock: clock site %d out of range", site)
		}
		count, k := binary.Uvarint(buf[off:])
		if k <= 0 {
			return nil, 0, fmt.Errorf("vclock: truncated clock count")
		}
		off += k
		if count == 0 {
			return nil, 0, fmt.Errorf("vclock: zero clock entry for site %d", site)
		}
		vc[ident.SiteID(site)] = count
	}
	return vc, off, nil
}

package simnet

import (
	"testing"
)

func TestDeliveryOrderAndClock(t *testing.T) {
	n := New(Config{MinLatency: 10, MaxLatency: 10, Seed: 1})
	n.Send(1, 2, "a")
	n.Send(1, 2, "b")
	e1, ok := n.DeliverNext()
	if !ok || e1.Payload != "a" {
		t.Fatalf("first delivery: %+v %v", e1, ok)
	}
	if n.Now() != 10 {
		t.Errorf("clock = %d, want 10", n.Now())
	}
	e2, ok := n.DeliverNext()
	if !ok || e2.Payload != "b" {
		t.Fatalf("second delivery: %+v", e2)
	}
	if _, ok := n.DeliverNext(); ok {
		t.Error("delivery from empty network")
	}
	sent, delivered := n.Stats()
	if sent != 2 || delivered != 2 {
		t.Errorf("stats: %d/%d", sent, delivered)
	}
}

func TestRandomLatencyReorders(t *testing.T) {
	n := New(Config{MinLatency: 1, MaxLatency: 100, Seed: 7})
	const msgs = 200
	for i := 0; i < msgs; i++ {
		n.Send(1, 2, i)
	}
	reordered := false
	prev := -1
	for {
		e, ok := n.DeliverNext()
		if !ok {
			break
		}
		if e.Payload.(int) < prev {
			reordered = true
		}
		prev = e.Payload.(int)
	}
	if !reordered {
		t.Error("uniform random latency should reorder some messages")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []any {
		n := New(Config{MinLatency: 1, MaxLatency: 50, Seed: 42})
		for i := 0; i < 50; i++ {
			n.Send(1, 2, i)
		}
		var out []any
		for {
			e, ok := n.DeliverNext()
			if !ok {
				return out
			}
			out = append(out, e.Payload)
		}
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPartitionHoldsAndHeals(t *testing.T) {
	n := New(Config{MinLatency: 5, MaxLatency: 5, Seed: 1})
	if err := n.Partition(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := n.Partition(1, 1); err == nil {
		t.Error("self-partition accepted")
	}
	n.Send(1, 2, "held")
	n.Send(1, 3, "through")
	if n.Held() != 1 || n.InFlight() != 1 {
		t.Fatalf("held=%d inflight=%d", n.Held(), n.InFlight())
	}
	e, ok := n.DeliverNext()
	if !ok || e.Payload != "through" {
		t.Fatalf("delivery: %+v", e)
	}
	if _, ok := n.DeliverNext(); ok {
		t.Error("held message delivered across partition")
	}
	n.Heal(1, 2)
	e, ok = n.DeliverNext()
	if !ok || e.Payload != "held" {
		t.Fatalf("post-heal delivery: %+v", e)
	}
}

func TestPartitionStallsInFlight(t *testing.T) {
	n := New(Config{MinLatency: 5, MaxLatency: 5, Seed: 1})
	n.Send(1, 2, "x")
	if err := n.Partition(2, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.DeliverNext(); ok {
		t.Error("in-flight message crossed a fresh partition")
	}
	n.HealAll()
	if e, ok := n.DeliverNext(); !ok || e.Payload != "x" {
		t.Errorf("post-heal: %+v %v", e, ok)
	}
}

func TestHealAllMultiplePartitions(t *testing.T) {
	n := New(Config{Seed: 1})
	if err := n.Partition(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := n.Partition(1, 3); err != nil {
		t.Fatal(err)
	}
	n.Send(1, 2, "a")
	n.Send(1, 3, "b")
	if n.Held() != 2 {
		t.Fatalf("held = %d", n.Held())
	}
	n.HealAll()
	if n.Held() != 0 || n.InFlight() != 2 {
		t.Errorf("after heal: held=%d inflight=%d", n.Held(), n.InFlight())
	}
}

func TestHealOnePartitionKeepsOther(t *testing.T) {
	n := New(Config{Seed: 1})
	_ = n.Partition(1, 2)
	_ = n.Partition(1, 3)
	n.Send(1, 2, "a")
	n.Send(1, 3, "b")
	n.Heal(1, 2)
	if n.Held() != 1 || n.InFlight() != 1 {
		t.Errorf("held=%d inflight=%d", n.Held(), n.InFlight())
	}
}

func TestDefaults(t *testing.T) {
	n := New(Config{})
	if n.cfg.MinLatency != 5 || n.cfg.MaxLatency != 50 {
		t.Errorf("defaults: %+v", n.cfg)
	}
	m := New(Config{MinLatency: 10, MaxLatency: 3})
	if m.cfg.MaxLatency != 10 {
		t.Errorf("max < min not clamped: %+v", m.cfg)
	}
}

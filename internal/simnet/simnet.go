// Package simnet is a deterministic discrete-event network simulator for
// exercising Treedoc replicas under realistic distribution: random message
// latency (hence reordering), site-to-site partitions, and healing. The
// paper's replicas "synchronise only in the background" (Section 6); simnet
// provides that background with a virtual clock so tests and benchmarks are
// reproducible.
//
// Messages between partitioned sites are held and delivered after healing,
// modelling the paper's disconnected-operation setting rather than loss:
// "Eventually, every site executes every action" (Section 1).
//
// Two fault injectors live here, one per plane:
//
//   - Network: the in-process discrete-event simulator above, for
//     deterministic unit tests and benchmarks (Partition/Heal hold and
//     release messages; latency is a seeded uniform draw on a virtual
//     clock).
//   - Proxy: a real-TCP byte proxy for multi-process harnesses
//     (cmd/treedoc-load), fronting a live listener so chaos scenarios can
//     sever and delay actual connections. Unlike Network it models the
//     operator-visible failure: partitions kill connections instead of
//     buffering messages, and recovery relies on the transport's own
//     reconnect and anti-entropy.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"

	"github.com/treedoc/treedoc/internal/ident"
)

// Envelope is a message in flight.
type Envelope struct {
	From, To ident.SiteID
	Payload  any
	// SendAt and DeliverAt are virtual-clock times in milliseconds.
	SendAt, DeliverAt int64
	seq               uint64 // tiebreak for deterministic ordering
}

// Config parameterises the simulated network.
type Config struct {
	// MinLatency and MaxLatency bound the uniform random delivery delay in
	// virtual milliseconds. Defaults: 5 and 50.
	MinLatency, MaxLatency int64
	// Loss is the probability (0..1) that a lossy message is silently
	// dropped at send time. Only payloads implementing Lossy() true are
	// affected: operation gossip is lossy and recovered by anti-entropy,
	// while protocol traffic (commitment) models a reliable channel.
	Loss float64
	// Seed drives the latency and loss randomness; 0 means 1.
	Seed int64
}

// LossyPayload marks payloads that the network may drop. Payloads without
// the marker (or returning false) are delivered reliably.
type LossyPayload interface {
	Lossy() bool
}

// Network is the simulator. Not safe for concurrent use: the discrete-event
// loop is single-threaded by design, which is what makes runs reproducible.
type Network struct {
	cfg  Config
	now  int64
	rng  *rand.Rand
	next uint64

	inFlight envHeap
	// held buffers messages between partitioned sites until healing.
	held []*Envelope
	cut  map[[2]ident.SiteID]bool

	sent, delivered, dropped uint64
}

// New creates a network.
func New(cfg Config) *Network {
	if cfg.MinLatency == 0 && cfg.MaxLatency == 0 {
		cfg.MinLatency, cfg.MaxLatency = 5, 50
	}
	if cfg.MaxLatency < cfg.MinLatency {
		cfg.MaxLatency = cfg.MinLatency
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Network{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		cut: make(map[[2]ident.SiteID]bool),
	}
}

// Now returns the virtual time in milliseconds.
func (n *Network) Now() int64 { return n.now }

// Stats returns total sent and delivered message counts.
func (n *Network) Stats() (sent, delivered uint64) { return n.sent, n.delivered }

// Dropped returns the number of messages lost to simulated loss.
func (n *Network) Dropped() uint64 { return n.dropped }

// latency draws a delivery delay.
func (n *Network) latency() int64 {
	span := n.cfg.MaxLatency - n.cfg.MinLatency
	if span <= 0 {
		return n.cfg.MinLatency
	}
	return n.cfg.MinLatency + n.rng.Int63n(span+1)
}

func pairKey(a, b ident.SiteID) [2]ident.SiteID {
	if a > b {
		a, b = b, a
	}
	return [2]ident.SiteID{a, b}
}

// Partition severs the link between two sites; messages between them are
// held until Heal. Partitioning a site from itself is rejected.
func (n *Network) Partition(a, b ident.SiteID) error {
	if a == b {
		return fmt.Errorf("simnet: cannot partition a site from itself")
	}
	n.cut[pairKey(a, b)] = true
	// In-flight messages across the cut stall too.
	var keep envHeap
	for _, e := range n.inFlight {
		if n.cut[pairKey(e.From, e.To)] {
			n.held = append(n.held, e)
		} else {
			keep = append(keep, e)
		}
	}
	heap.Init(&keep)
	n.inFlight = keep
	return nil
}

// Heal removes the partition between two sites and schedules held traffic.
func (n *Network) Heal(a, b ident.SiteID) {
	delete(n.cut, pairKey(a, b))
	var still []*Envelope
	for _, e := range n.held {
		if n.cut[pairKey(e.From, e.To)] {
			still = append(still, e)
			continue
		}
		e.DeliverAt = n.now + n.latency()
		heap.Push(&n.inFlight, e)
	}
	n.held = still
}

// HealAll removes every partition.
func (n *Network) HealAll() {
	for k := range n.cut {
		delete(n.cut, k)
	}
	for _, e := range n.held {
		e.DeliverAt = n.now + n.latency()
		heap.Push(&n.inFlight, e)
	}
	n.held = nil
}

// Send enqueues a message. Between partitioned sites it is held for
// delivery after healing. Lossy payloads may be dropped silently.
func (n *Network) Send(from, to ident.SiteID, payload any) {
	n.sent++
	if n.cfg.Loss > 0 {
		if lp, ok := payload.(LossyPayload); ok && lp.Lossy() && n.rng.Float64() < n.cfg.Loss {
			n.dropped++
			return
		}
	}
	n.next++
	e := &Envelope{From: from, To: to, Payload: payload, SendAt: n.now, seq: n.next}
	if n.cut[pairKey(from, to)] {
		n.held = append(n.held, e)
		return
	}
	e.DeliverAt = n.now + n.latency()
	heap.Push(&n.inFlight, e)
}

// DeliverNext advances the virtual clock to the earliest in-flight message
// and returns it. ok is false when nothing is in flight (held partition
// traffic does not count).
func (n *Network) DeliverNext() (Envelope, bool) {
	if n.inFlight.Len() == 0 {
		return Envelope{}, false
	}
	e := heap.Pop(&n.inFlight).(*Envelope)
	if e.DeliverAt > n.now {
		n.now = e.DeliverAt
	}
	n.delivered++
	return *e, true
}

// InFlight returns the number of undelivered, unheld messages.
func (n *Network) InFlight() int { return n.inFlight.Len() }

// Held returns the number of messages stalled behind partitions.
func (n *Network) Held() int { return len(n.held) }

// envHeap orders envelopes by delivery time, then send order.
type envHeap []*Envelope

func (h envHeap) Len() int { return len(h) }
func (h envHeap) Less(i, j int) bool {
	if h[i].DeliverAt != h[j].DeliverAt {
		return h[i].DeliverAt < h[j].DeliverAt
	}
	return h[i].seq < h[j].seq
}
func (h envHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *envHeap) Push(x any)   { *h = append(*h, x.(*Envelope)) }
func (h *envHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

package simnet

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Proxy is the real-TCP counterpart of Network: a transparent byte proxy
// in front of one listener that can inject latency and partitions into
// live connections. Where Network shapes traffic inside a single
// deterministic process, Proxy shapes traffic between real processes —
// cmd/treedoc-load puts one in front of each hub so chaos scenarios can
// partition a hub from its clients and mesh peers (every dial to the
// hub's advertised address traverses the proxy) and heal it again without
// the hub cooperating or even noticing.
//
// Semantics differ from Network deliberately: a partitioned Network holds
// messages for delivery after healing, modelling disconnected operation,
// while a partitioned Proxy severs TCP connections and refuses new ones —
// the failure a real operator sees. Recovery after Heal is the transport
// layer's job (reconnect, anti-entropy catch-up), which is exactly what
// the chaos envelopes verify.
type Proxy struct {
	ln     net.Listener
	target string

	mu      sync.Mutex
	latency time.Duration         // guarded by mu: per-direction added delay
	cut     bool                  // guarded by mu: true while partitioned
	conns   map[net.Conn]struct{} // guarded by mu: open accepted conns, severed on Partition
	closed  bool                  // guarded by mu
	wg      sync.WaitGroup
}

// NewProxy starts a proxy on a fresh loopback port forwarding to target.
// Close it to release the port.
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("simnet: proxy listen: %w", err)
	}
	p := &Proxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — the address to advertise in
// place of the target's.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Target returns the address the proxy forwards to.
func (p *Proxy) Target() string { return p.target }

// SetLatency sets the added one-way delay applied to each direction of
// every connection (so round trips gain roughly 2d). Zero removes it.
// Takes effect immediately, including on established connections. The
// delay is applied per read chunk, serialising the stream — a model of a
// slow link rather than a long fat one, which also makes it double as the
// slow-client backpressure knob.
func (p *Proxy) SetLatency(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if d < 0 {
		d = 0
	}
	p.latency = d
}

// Partition severs every established connection through the proxy and
// makes new dials fail until Heal. The target itself keeps running; only
// its advertised address goes dark.
func (p *Proxy) Partition() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cut = true
	for c := range p.conns {
		c.Close()
	}
}

// Heal re-admits new connections after a Partition. Connections severed
// by the partition stay dead; the dialing side must reconnect.
func (p *Proxy) Heal() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cut = false
}

// Close stops the proxy, severing all connections and releasing the port.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.cut || p.closed {
			p.mu.Unlock()
			c.Close() // RST-ish fast failure: the dialer sees a dead address
			continue
		}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.serve(c)
	}
}

// serve dials the target and shuttles bytes both ways until either side
// closes or a Partition severs the pair.
func (p *Proxy) serve(client net.Conn) {
	defer p.wg.Done()
	upstream, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		client.Close()
		return
	}
	p.mu.Lock()
	if p.cut || p.closed {
		p.mu.Unlock()
		client.Close()
		upstream.Close()
		return
	}
	p.conns[client] = struct{}{}
	p.conns[upstream] = struct{}{}
	p.mu.Unlock()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); p.pipe(upstream, client) }()
	go func() { defer wg.Done(); p.pipe(client, upstream) }()
	wg.Wait()

	p.mu.Lock()
	delete(p.conns, client)
	delete(p.conns, upstream)
	p.mu.Unlock()
	client.Close()
	upstream.Close()
}

// pipe copies src to dst, delaying each chunk by the current latency.
// Closing either end (including a Partition closing both) unblocks the
// Read or Write and ends the loop; the paired pipe ends via the closes in
// serve's epilogue.
func (p *Proxy) pipe(dst, src net.Conn) {
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			p.mu.Lock()
			d := p.latency
			p.mu.Unlock()
			if d > 0 {
				time.Sleep(d)
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				dst.Close()
				src.Close()
				return
			}
		}
		if err != nil {
			if err != io.EOF {
				dst.Close()
			} else if cw, ok := dst.(interface{ CloseWrite() error }); ok {
				cw.CloseWrite() // propagate half-close so in-flight replies drain
			} else {
				dst.Close()
			}
			return
		}
	}
}

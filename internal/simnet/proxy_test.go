package simnet

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// echoServer accepts connections and echoes lines back, returning its
// address and a stop function.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					fmt.Fprintf(c, "echo:%s\n", sc.Text())
				}
			}(c)
		}
	}()
	return ln.Addr().String()
}

func roundTrip(t *testing.T, conn net.Conn, msg string) (string, error) {
	t.Helper()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := fmt.Fprintf(conn, "%s\n", msg); err != nil {
		return "", err
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	return strings.TrimSpace(line), err
}

func TestProxyPassthrough(t *testing.T) {
	p, err := NewProxy(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, err := roundTrip(t, conn, "hello")
	if err != nil || got != "echo:hello" {
		t.Fatalf("round trip = %q, %v", got, err)
	}
}

func TestProxyLatency(t *testing.T) {
	p, err := NewProxy(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := roundTrip(t, conn, "warm"); err != nil {
		t.Fatal(err)
	}

	const d = 50 * time.Millisecond
	p.SetLatency(d)
	start := time.Now()
	if _, err := roundTrip(t, conn, "slow"); err != nil {
		t.Fatal(err)
	}
	// One-way delay each direction: the echo round trip gains >= 2d.
	if took := time.Since(start); took < 2*d {
		t.Errorf("latency round trip took %v, want >= %v", took, 2*d)
	}

	p.SetLatency(0)
	start = time.Now()
	if _, err := roundTrip(t, conn, "fast"); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > d {
		t.Errorf("cleared latency round trip took %v", took)
	}
}

func TestProxyPartitionAndHeal(t *testing.T) {
	p, err := NewProxy(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := roundTrip(t, conn, "pre"); err != nil {
		t.Fatal(err)
	}

	p.Partition()
	// Established connection is severed: the next round trip fails.
	if got, err := roundTrip(t, conn, "cut"); err == nil {
		t.Fatalf("round trip through partition succeeded: %q", got)
	}
	// New dials fail fast (either refused or immediately closed).
	if c2, err := net.Dial("tcp", p.Addr()); err == nil {
		if got, err := roundTrip(t, c2, "cut2"); err == nil {
			t.Fatalf("new conn through partition succeeded: %q", got)
		}
		c2.Close()
	}

	p.Heal()
	c3, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	got, err := roundTrip(t, c3, "healed")
	if err != nil || got != "echo:healed" {
		t.Fatalf("post-heal round trip = %q, %v", got, err)
	}
}

func TestProxyCloseIdempotent(t *testing.T) {
	p, err := NewProxy(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// Benchgate is the CI benchmark regression gate: a small, dependency-free
// benchstat equivalent over the standard `go test -bench` output, gating
// time (ns/op) and allocations (B/op, allocs/op).
//
// Gate a run against the checked-in baseline (exit 1 on any benchmark
// more than -threshold slower — or allocating more — than its baseline):
//
//	go test -run '^$' -bench 'BenchmarkLocalEdits|BenchmarkStorageCodec|BenchmarkReplay' \
//	  -cpu 1 -benchtime 100ms -count 6 -benchmem . | tee bench.txt
//	go run ./cmd/benchgate -baseline BENCH_BASELINE.json bench.txt
//
// Always pass -cpu 1: with GOMAXPROCS > 1 go test appends a "-N" suffix
// to every benchmark name, so a baseline seeded on an N-core machine
// would not even match names on an M-core one — and the gated hot paths
// are single-goroutine, so -cpu 1 only removes scheduler noise. Pass
// -benchmem: a baseline with a mem section treats a run without
// allocation columns as missing benchmarks and fails.
//
// Re-seed the baseline after an intentional perf change or on a new
// runner class (commit the result):
//
//	go run ./cmd/benchgate -baseline BENCH_BASELINE.json -update -note "CI runner class X" bench.txt
//
// Append one pooled, reduced entry to the benchmark trajectory file (CI
// does this on every merge to main, persisting the file across runs, so
// the committed baseline's single gate point becomes a curve):
//
//	go run ./cmd/benchgate -append-history bench-history.jsonl -history-note "$GITHUB_SHA" bench.txt
//
// The default statistic is min-of-count: the fastest of N repetitions is
// the least-noise estimate of the code's true cost, and with
// -benchtime 100ms each repetition averages over enough iterations that
// the hot-path set above stays within ~12% run-to-run — comfortably
// inside the 20% default threshold. Allocation metrics are deterministic
// per run shape; they additionally get an absolute slack (64 B, 2
// allocs) so near-zero paths cannot flap the gate. Baselines are only
// meaningful on the hardware class that produced them (see the note
// field).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/treedoc/treedoc/internal/bench"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "baseline file to compare against (or write with -update)")
	update := flag.Bool("update", false, "write the parsed run as the new baseline instead of comparing")
	threshold := flag.Float64("threshold", 0.20, "relative regression threshold (0.20 = fail at >20% slower / bigger)")
	stat := flag.String("stat", "min", "reducing statistic over -count samples: min (least noise) or median")
	benchtime := flag.String("benchtime", "100ms", "recorded in the baseline with -update: the -benchtime that produced it")
	count := flag.Int("count", 6, "recorded in the baseline with -update: the -count that produced it")
	note := flag.String("note", "", "recorded in the baseline with -update: where these numbers came from")
	appendHistory := flag.String("append-history", "", "append the reduced run to this JSONL trajectory file and exit (no gating)")
	historyNote := flag.String("history-note", "", "identifier recorded with -append-history (e.g. the commit SHA)")
	flag.Parse()

	// Multiple input files pool their samples per benchmark before the
	// reduction: two bench runs separated in time are far more robust to a
	// transient load spike on the runner than one run with double the
	// count, because -count repetitions execute back-to-back inside the
	// spike's window.
	samples := make(map[string]*bench.Samples)
	readInto := func(in io.Reader) {
		s, err := bench.ParseBenchSamples(in)
		if err != nil {
			fatal(err)
		}
		for name, xs := range s {
			if agg := samples[name]; agg != nil {
				agg.Ns = append(agg.Ns, xs.Ns...)
				agg.Bytes = append(agg.Bytes, xs.Bytes...)
				agg.Allocs = append(agg.Allocs, xs.Allocs...)
			} else {
				samples[name] = xs
			}
		}
	}
	if flag.NArg() == 0 {
		readInto(os.Stdin)
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		readInto(f)
		f.Close()
	}
	var statFn func([]float64) float64
	switch *stat {
	case "min":
		statFn = bench.Min
	case "median":
		statFn = bench.Median
	default:
		fatal(fmt.Errorf("unknown -stat %q (want min or median)", *stat))
	}
	reduced := bench.ReduceNs(samples, statFn)
	mem := bench.ReduceMem(samples, statFn)
	if len(reduced) == 0 {
		fatal(fmt.Errorf("no benchmark results in input (did the bench run fail?)"))
	}

	if *appendHistory != "" {
		f, err := os.OpenFile(*appendHistory, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		entry := &bench.HistoryEntry{Note: *historyNote, Stat: *stat, Results: reduced, Mem: mem}
		if err := bench.AppendHistory(f, entry); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: appended %d benchmark %ss (%d with allocations) to %s\n",
			len(reduced), *stat, len(mem), *appendHistory)
		return
	}

	if *update {
		b := &bench.Baseline{
			Version:   1,
			Benchtime: *benchtime,
			Count:     *count,
			Stat:      *stat,
			Note:      *note,
			Results:   reduced,
			Mem:       mem,
		}
		f, err := os.Create(*baselinePath)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteBaseline(f, b); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: wrote %d benchmark %ss (%d with allocations) to %s\n",
			len(reduced), *stat, len(mem), *baselinePath)
		return
	}

	bf, err := os.Open(*baselinePath)
	if err != nil {
		fatal(err)
	}
	base, err := bench.ReadBaseline(bf)
	bf.Close()
	if err != nil {
		fatal(err)
	}

	if base.Stat != "" && base.Stat != *stat {
		fatal(fmt.Errorf("baseline was computed with -stat %s, this run with -stat %s", base.Stat, *stat))
	}
	c := bench.Compare(base, reduced, *threshold)
	mc := bench.CompareMem(base, mem, *threshold)
	fmt.Printf("benchgate: %d gated (%d with allocations), %d within ±%.0f%%, %d improved, %d regressed, %d alloc regressions\n",
		len(base.Results), len(base.Mem), len(c.Within), *threshold*100, len(c.Improvements), len(c.Regressions), len(mc.Regressions))
	for _, d := range c.Improvements {
		fmt.Printf("  faster: %-60s %12.0f -> %12.0f ns/op (%.2fx)\n", d.Name, d.Base, d.Current, d.Ratio)
	}
	for _, d := range mc.Improvements {
		fmt.Printf("  leaner: %-60s %12.0f -> %12.0f %s (%.2fx)\n", d.Name, d.Base, d.Current, d.Metric, d.Ratio)
	}
	for _, name := range c.MissingFromBase {
		fmt.Printf("  UNGATED (not in baseline): %s\n", name)
	}
	for _, name := range c.MissingFromRun {
		fmt.Printf("  MISSING from run (renamed or deleted?): %s\n", name)
	}
	for _, name := range mc.MissingFromRun {
		fmt.Printf("  MISSING allocations (run without -benchmem?): %s\n", name)
	}
	for _, d := range c.Regressions {
		fmt.Printf("  REGRESSED: %-57s %12.0f -> %12.0f ns/op (%.2fx)\n", d.Name, d.Base, d.Current, d.Ratio)
	}
	for _, d := range mc.Regressions {
		fmt.Printf("  REGRESSED: %-57s %12.0f -> %12.0f %s (%.2fx)\n", d.Name, d.Base, d.Current, d.Metric, d.Ratio)
	}
	failed := false
	if len(c.Regressions) > 0 || len(mc.Regressions) > 0 {
		fmt.Printf("benchgate: FAIL: %d time and %d allocation regression(s) more than %.0f%% vs %s\n",
			len(c.Regressions), len(mc.Regressions), *threshold*100, *baselinePath)
		failed = true
	}
	if len(c.MissingFromRun) > 0 || len(mc.MissingFromRun) > 0 {
		fmt.Printf("benchgate: FAIL: %d baseline benchmark(s) missing from the run (%d without allocation columns)\n",
			len(c.MissingFromRun), len(mc.MissingFromRun))
		failed = true
	}
	if len(c.MissingFromBase) > 0 {
		// A benchmark the baseline has never seen runs with no regression
		// bound at all — silently, which is how gates rot. Adding a benchmark
		// therefore requires re-seeding the baseline in the same change.
		fmt.Printf("benchgate: FAIL: %d benchmark(s) not in the baseline; re-seed with -update to gate them\n",
			len(c.MissingFromBase))
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
	os.Exit(1)
}

// Command treedoc-bench regenerates the tables and figures of the Treedoc
// paper's evaluation (Section 5) from the calibrated synthetic edit
// histories. See DESIGN.md for the per-experiment index and EXPERIMENTS.md
// for paper-vs-measured records.
//
// Usage:
//
//	treedoc-bench             # everything
//	treedoc-bench -table 4    # one table (1..5)
//	treedoc-bench -figure 6   # figure 6's two series
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/treedoc/treedoc/internal/bench"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1..5); 0 = all")
	figure := flag.Int("figure", 0, "regenerate one figure (6); 0 = per -table")
	flag.Parse()

	if err := run(*table, *figure); err != nil {
		fmt.Fprintln(os.Stderr, "treedoc-bench:", err)
		os.Exit(1)
	}
}

func run(table, figure int) error {
	all := table == 0 && figure == 0
	if table == 1 || all {
		rows, err := bench.Table1()
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatTable1(rows))
	}
	if table == 2 || all {
		rows, err := bench.Table2()
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatTable2(rows))
	}
	if table == 3 || all {
		cells, err := bench.Table3()
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatTable3(cells))
	}
	if table == 4 || all {
		cells, err := bench.Table4()
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatTable4(cells))
	}
	if table == 5 || all {
		rows, err := bench.Table5()
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatTable5(rows))
	}
	if figure == 6 || all {
		series, err := bench.Figure6()
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatFigure6(series))
	}
	if table != 0 && (table < 1 || table > 5) {
		return fmt.Errorf("no table %d (have 1..5)", table)
	}
	if figure != 0 && figure != 6 {
		return fmt.Errorf("no figure %d (have 6)", figure)
	}
	return nil
}

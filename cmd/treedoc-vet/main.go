// Command treedoc-vet runs the repo's custom invariant analyzers —
// noalloc, guardedby, actoronly, framekinds, errwrap — over package
// patterns, printing findings in the familiar file:line:col form and
// exiting non-zero when any invariant is violated.
//
// Usage:
//
//	treedoc-vet [-run name,name] [packages]
//
// Patterns default to ./... and are expanded with go list. The tool must
// run from inside the module it checks (import resolution and the
// noalloc compiler pass are rooted there). It is invoked directly rather
// than through go vet -vettool: the vettool protocol requires the
// x/tools unitchecker, and this repo builds offline from the standard
// library alone.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"github.com/treedoc/treedoc/internal/analysis"
	"github.com/treedoc/treedoc/internal/analysis/actoronly"
	"github.com/treedoc/treedoc/internal/analysis/errwrap"
	"github.com/treedoc/treedoc/internal/analysis/framekinds"
	"github.com/treedoc/treedoc/internal/analysis/guardedby"
	"github.com/treedoc/treedoc/internal/analysis/noalloc"
)

var all = []*analysis.Analyzer{
	actoronly.Analyzer,
	errwrap.Analyzer,
	framekinds.Analyzer,
	guardedby.Analyzer,
	noalloc.Analyzer,
}

func main() {
	runList := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = usage
	flag.Parse()

	analyzers, err := selectAnalyzers(*runList)
	if err != nil {
		fatal(err)
	}

	modRoot, err := moduleRoot()
	if err != nil {
		fatal(err)
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := listPackages(patterns)
	if err != nil {
		fatal(err)
	}

	loader := analysis.NewLoader()
	var diags []analysis.Diagnostic
	for _, p := range pkgs {
		pkg, err := loader.Load(p.dir, p.importPath, modRoot)
		if err != nil {
			fatal(err)
		}
		for _, a := range analyzers {
			ds, err := analysis.Run(a, pkg)
			if err != nil {
				fatal(err)
			}
			diags = append(diags, ds...)
		}
	}

	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: treedoc-vet [-run name,name] [packages]\n\nanalyzers:\n")
	for _, a := range all {
		fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, a.Doc)
	}
	flag.PrintDefaults()
}

func selectAnalyzers(runList string) ([]*analysis.Analyzer, error) {
	if runList == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(runList, ",") {
		a := byName[strings.TrimSpace(name)]
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// moduleRoot locates the enclosing module and refuses to run outside
// one: the source importer and the noalloc compiler pass both resolve
// packages relative to it.
func moduleRoot() (string, error) {
	out, err := goTool("env", "GOMOD")
	if err != nil {
		return "", err
	}
	gomod := strings.TrimSpace(out)
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("treedoc-vet must run from inside a module")
	}
	return filepath.Dir(gomod), nil
}

type pkgRef struct {
	dir, importPath string
}

func listPackages(patterns []string) ([]pkgRef, error) {
	args := append([]string{"list", "-f", "{{.Dir}}\t{{.ImportPath}}"}, patterns...)
	out, err := goTool(args...)
	if err != nil {
		return nil, err
	}
	var pkgs []pkgRef
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" {
			continue
		}
		dir, importPath, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("unexpected go list output: %q", line)
		}
		pkgs = append(pkgs, pkgRef{dir: dir, importPath: importPath})
	}
	return pkgs, nil
}

// goTool runs the go command and returns stdout, folding stderr into the
// error so go list complaints surface verbatim.
func goTool(args ...string) (string, error) {
	cmd := exec.Command("go", args...)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return string(out), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "treedoc-vet:", err)
	os.Exit(2)
}

// Command treedoc-replay replays an edit history through a Treedoc replica
// and reports the paper's overhead measurements (Section 5) for it.
//
// Histories come from the built-in calibrated profiles or from a JSON-lines
// trace file (see internal/trace for the format):
//
//	treedoc-replay -list
//	treedoc-replay -profile acf.tex -mode udis -balanced -flatten 2
//	treedoc-replay -file history.jsonl -series
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/treedoc/treedoc/internal/bench"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/trace"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list built-in workload profiles")
		profile  = flag.String("profile", "", "built-in profile name")
		file     = flag.String("file", "", "JSON-lines trace file")
		mode     = flag.String("mode", "sdis", "disambiguator scheme: sdis or udis")
		balanced = flag.Bool("balanced", false, "balanced allocation (Section 4.1)")
		batch    = flag.Bool("batch", false, "group consecutive inserts into minimal subtrees")
		flatten  = flag.Int("flatten", 0, "flatten a cold subtree every N revisions (0 = never)")
		series   = flag.Bool("series", false, "print per-revision node counts (Figure 6 style)")
		dump     = flag.String("dump", "", "write the workload as a JSON-lines trace file and exit")
	)
	flag.Parse()

	if err := run(*list, *profile, *file, *mode, *balanced, *batch, *flatten, *series, *dump); err != nil {
		fmt.Fprintln(os.Stderr, "treedoc-replay:", err)
		os.Exit(1)
	}
}

func run(list bool, profile, file, mode string, balanced, batch bool, flatten int, series bool, dump string) error {
	if list {
		fmt.Printf("%-22s %-10s %9s %8s %7s\n", "profile", "atoms", "revisions", "initial", "final")
		for _, p := range trace.Profiles() {
			fmt.Printf("%-22s %-10s %9d %8d %7d\n", p.Name, p.Granularity, p.Revisions, p.InitialAtoms, p.FinalAtoms)
		}
		return nil
	}
	var tr *trace.Trace
	switch {
	case profile != "" && file != "":
		return fmt.Errorf("choose either -profile or -file")
	case profile != "":
		p, err := trace.ProfileByName(profile)
		if err != nil {
			return err
		}
		tr, err = trace.Generate(p)
		if err != nil {
			return err
		}
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err = trace.Read(f)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -profile, -file or -list")
	}

	if dump != "" {
		f, err := os.Create(dump)
		if err != nil {
			return err
		}
		if err := trace.Write(f, tr); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d revisions\n", dump, len(tr.Revisions))
		return nil
	}

	rc := bench.ReplayConfig{
		Balanced:        balanced,
		Batch:           batch,
		FlattenInterval: flatten,
		Series:          series,
	}
	switch mode {
	case "sdis":
		rc.Mode = ident.SDIS
	case "udis":
		rc.Mode = ident.UDIS
	default:
		return fmt.Errorf("unknown mode %q (want sdis or udis)", mode)
	}

	res, err := bench.ReplayTreedoc(tr, rc)
	if err != nil {
		return err
	}
	ts := res.Stats.Tree
	fmt.Printf("trace      %s: %d revisions, %d -> %d atoms (%d bytes), %d inserts / %d deletes\n",
		res.Trace.Name, res.Trace.Revisions, res.Trace.InitialAtoms, res.Trace.FinalAtoms,
		res.Trace.FinalBytes, res.Trace.Inserts, res.Trace.Deletes)
	fmt.Printf("config     %s\n", res.Config)
	fmt.Printf("replay     %v (%d ops, %.1f KB network)\n",
		res.Duration.Round(10_000), res.Stats.OpsApplied, float64(res.Stats.NetBits)/8192)
	fmt.Printf("PosID      max %d bits, avg %.2f bits, overhead/atom %.0f bits\n",
		ts.MaxIDBits, ts.AvgIDBits(), ts.OverheadBitsPerAtom())
	fmt.Printf("nodes      %d (%d minis, %d tombstones, %d flat atoms, %.2f%% non-tombstone)\n",
		ts.Nodes, ts.Minis, ts.DeadMinis, ts.FlatAtoms, 100*ts.NonTombstoneFraction())
	fmt.Printf("memory     %d bytes overhead (%.2fx document)\n", ts.MemBytes, ts.MemOverheadRatio())
	fmt.Printf("disk       %d bytes total, %d bytes overhead (%.2f%% of document)\n",
		res.Disk.TotalBytes, res.Disk.OverheadBytes, res.Disk.OverheadPercent())
	fmt.Printf("tree       height %d\n", res.Stats.Height)
	if series {
		fmt.Printf("\n%10s %10s %12s\n", "revision", "nodes", "non-T nodes")
		for _, pt := range res.Series {
			fmt.Printf("%10d %10d %12d\n", pt.Revision, pt.Nodes, pt.NonTomb)
		}
	}
	return nil
}

// Treedoc-serve is the replication hub: a relay server that accepts framed
// TCP connections from Treedoc replicas (transport.Dial / treedoc.Dial)
// and fans every operation frame out to all other clients. The hub holds
// no document state; causal buffering at the edges orders, deduplicates
// and — via each engine's periodic anti-entropy exchange — repairs any
// frames a slow client's queue had to drop.
//
// With -log, the hub additionally runs an archivist: an in-process replica
// backed by a durable operation log that absorbs everything relayed,
// compacts it behind document snapshots, and serves snapshot catch-up to
// late joiners — so a client that connects long after everyone else left
// still recovers the document, without any long-lived peer online.
//
// With -flatten-every, the archivist also acts as the deployment's
// flatten janitor: on that period it proposes compacting the coldest
// subtree through the commitment protocol (Engine.ProposeFlattenCold).
// Every connected replica votes; a proposal racing a concurrent edit
// aborts harmlessly and is simply retried next period, so long-lived
// documents shed their tombstones and identifier overhead without any
// editor doing coordination work.
//
// Usage:
//
//	treedoc-serve -addr :9707 -queue 256 -v
//	treedoc-serve -addr :9707 -log /var/lib/treedoc -archive-site 281474976710655
//	treedoc-serve -addr :9707 -log /var/lib/treedoc -flatten-every 30s
//
// Wire a replica to it:
//
//	buf, _ := treedoc.NewTextBuffer(treedoc.WithSite(site))
//	eng, _ := treedoc.NewEngine(site, buf)
//	link, _ := treedoc.Dial("host:9707")
//	eng.Connect(link)
package main

import (
	"errors"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/treedoc/treedoc"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/transport"
)

func main() {
	addr := flag.String("addr", ":9707", "listen address")
	queue := flag.Int("queue", 256, "per-client outbound queue depth")
	verbose := flag.Bool("v", false, "log client connects and disconnects")
	logDir := flag.String("log", "", "archivist log directory (empty disables the archivist)")
	archiveSite := flag.Uint64("archive-site", uint64(ident.MaxSiteID), "site id of the archivist replica (must not collide with any editor)")
	compactEvery := flag.Int("compact", 16384, "archivist: retained ops before snapshot+truncate")
	snapThreshold := flag.Int("snap-threshold", 8192, "archivist: digest gap that triggers snapshot catch-up")
	flattenEvery := flag.Duration("flatten-every", 0, "archivist: period between cold-subtree flatten proposals (0 disables; requires -log)")
	flattenCold := flag.Int("flatten-cold", 2, "archivist: revisions a subtree must be quiet before it is proposed")
	flag.Parse()

	opts := []transport.HubOption{transport.WithHubQueueDepth(*queue)}
	if *verbose {
		opts = append(opts, transport.WithHubLogger(log.Printf))
	}
	hub, err := transport.ListenHub(*addr, opts...)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("treedoc-serve: relaying on %s", hub.Addr())

	var archive *treedoc.Engine
	if *logDir != "" {
		buf, err := treedoc.NewTextBuffer(treedoc.WithSite(treedoc.SiteID(*archiveSite)))
		if err != nil {
			log.Fatal(err)
		}
		archive, err = treedoc.NewEngine(treedoc.SiteID(*archiveSite), buf,
			treedoc.WithLogDir(*logDir),
			treedoc.WithCompactEvery(*compactEvery),
			treedoc.WithSnapshotThreshold(*snapThreshold),
			treedoc.WithSyncInterval(500*time.Millisecond))
		if err != nil {
			log.Fatal(err)
		}
		link, err := treedoc.Dial(hub.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		archive.Connect(link)
		log.Printf("treedoc-serve: archivist s%d persisting to %s (%d runes restored)",
			*archiveSite, *logDir, buf.Len())

		if *flattenEvery > 0 {
			stopJanitor := make(chan struct{})
			defer close(stopJanitor)
			go func() {
				ticker := time.NewTicker(*flattenEvery)
				defer ticker.Stop()
				for {
					select {
					case <-stopJanitor:
						return
					case <-ticker.C:
					}
					buf.EndRevision()
					ok, err := archive.ProposeFlattenCold(*flattenCold)
					if err != nil {
						if !errors.Is(err, transport.ErrStopped) {
							log.Printf("treedoc-serve: flatten proposal: %v", err)
						}
						return
					}
					if ok && *verbose {
						log.Printf("treedoc-serve: proposed cold flatten (committed %d, aborted %d so far)",
							archive.FlattensCommitted(), archive.FlattensAborted())
					}
				}
			}()
			log.Printf("treedoc-serve: flatten janitor proposing every %v", *flattenEvery)
		}
	} else if *flattenEvery > 0 {
		log.Fatal("treedoc-serve: -flatten-every requires -log (the archivist coordinates the commitment)")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("treedoc-serve: shutting down (%d frames relayed, %d dropped)",
		hub.Relays(), hub.Drops())
	if archive != nil {
		archive.Stop()
		log.Printf("treedoc-serve: archivist flushed (%d ops applied, %d snapshots served, %d pruned, %d flattens applied)",
			archive.Applied(), archive.SnapshotsSent(), archive.Pruned(), archive.FlattensApplied())
		if err := archive.Err(); err != nil {
			log.Printf("treedoc-serve: archivist error: %v", err)
		}
	}
	if err := hub.Close(); err != nil {
		log.Fatal(err)
	}
}

// Treedoc-serve is the replication hub: a relay server that accepts framed
// TCP connections from Treedoc replicas (transport.Dial / treedoc.Dial)
// and fans every operation frame out to all other clients. The hub holds
// no document state; causal buffering at the edges orders, deduplicates
// and — via each engine's periodic anti-entropy exchange — repairs any
// frames a slow client's queue had to drop.
//
// Usage:
//
//	treedoc-serve -addr :9707 -queue 256 -v
//
// Wire a replica to it:
//
//	buf, _ := treedoc.NewTextBuffer(treedoc.WithSite(site))
//	eng, _ := treedoc.NewEngine(site, buf)
//	link, _ := treedoc.Dial("host:9707")
//	eng.Connect(link)
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"github.com/treedoc/treedoc/internal/transport"
)

func main() {
	addr := flag.String("addr", ":9707", "listen address")
	queue := flag.Int("queue", 256, "per-client outbound queue depth")
	verbose := flag.Bool("v", false, "log client connects and disconnects")
	flag.Parse()

	opts := []transport.HubOption{transport.WithHubQueueDepth(*queue)}
	if *verbose {
		opts = append(opts, transport.WithHubLogger(log.Printf))
	}
	hub, err := transport.ListenHub(*addr, opts...)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("treedoc-serve: relaying on %s", hub.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("treedoc-serve: shutting down (%d frames relayed, %d dropped)",
		hub.Relays(), hub.Drops())
	if err := hub.Close(); err != nil {
		log.Fatal(err)
	}
}

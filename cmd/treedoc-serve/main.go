// Treedoc-serve is the replication hub: a relay server that accepts framed
// TCP connections from Treedoc replicas and fans frames out within
// per-document relay groups. Clients attach to documents with the
// kindHello handshake (treedoc.DialDoc / treedoc.DialSession); a plain
// treedoc.Dial client is a legacy single-document client on the "default"
// document and keeps working unchanged. The hub holds no document state;
// causal buffering at the edges orders, deduplicates and — via each
// engine's periodic anti-entropy exchange — repairs any frames a slow
// client's queue had to drop.
//
// With -log, the hub additionally runs one archivist per document named
// in -docs: an in-process replica backed by a durable operation log under
// <log>/<doc>/ that absorbs everything relayed on that document, compacts
// it behind snapshots, and serves snapshot catch-up to late joiners — so
// a client that connects long after everyone else left still recovers its
// document, without any long-lived peer online.
//
// With -flatten-every, each archivist also acts as its document's flatten
// janitor: on that period it proposes compacting the coldest subtree
// through the commitment protocol (Engine.ProposeFlattenCold). A proposal
// racing a concurrent edit aborts harmlessly and is retried next period.
//
// With -peers (and -self), N hub processes split the document space by
// consistent hashing: an attach for a document another process owns is
// answered with a redirect, which DialDoc and Session clients follow
// transparently. Archivists are only started for documents this process
// owns.
//
// Usage:
//
//	treedoc-serve -addr :9707 -queue 256 -v
//	treedoc-serve -addr :9707 -log /var/lib/treedoc -docs default,notes,wiki
//	treedoc-serve -addr :9707 -log /var/lib/treedoc -flatten-every 30s
//	treedoc-serve -addr :9707 -self hub1:9707 -peers hub1:9707,hub2:9707
//
// Wire a replica to it:
//
//	buf, _ := treedoc.NewTextBuffer(treedoc.WithSite(site))
//	eng, _ := treedoc.NewEngine(site, buf)
//	link, _ := treedoc.DialDoc("host:9707", "notes")
//	eng.Connect(link)
package main

import (
	"errors"
	"flag"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"github.com/treedoc/treedoc"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/transport"
)

// archivist is one document's durable replica and (optionally) flatten
// janitor.
type archivist struct {
	doc string
	buf *treedoc.TextBuffer
	eng *treedoc.Engine
}

func main() {
	addr := flag.String("addr", ":9707", "listen address")
	queue := flag.Int("queue", 256, "per-client outbound queue depth")
	verbose := flag.Bool("v", false, "log client connects, disconnects and slow-client drops")
	docs := flag.String("docs", transport.DefaultDoc, "comma-separated documents to archive (with -log); clients may attach to any document regardless")
	self := flag.String("self", "", "this hub's advertised address in the shard ring (required with -peers)")
	peers := flag.String("peers", "", "comma-separated advertised addresses of every hub in the shard ring, including this one (empty disables sharding)")
	logDir := flag.String("log", "", "archivist log directory; each document persists under <log>/<doc>/ (empty disables archivists)")
	archiveSite := flag.Uint64("archive-site", uint64(ident.MaxSiteID), "site id of the first archivist replica; each further document counts down from it (must not collide with any editor)")
	compactEvery := flag.Int("compact", 16384, "archivist: retained ops before snapshot+truncate")
	snapThreshold := flag.Int("snap-threshold", 8192, "archivist: digest gap that triggers snapshot catch-up")
	flattenEvery := flag.Duration("flatten-every", 0, "archivist: period between cold-subtree flatten proposals per document (0 disables; requires -log)")
	flattenCold := flag.Int("flatten-cold", 2, "archivist: revisions a subtree must be quiet before it is proposed")
	flag.Parse()

	opts := []transport.HubOption{transport.WithHubQueueDepth(*queue)}
	if *verbose {
		opts = append(opts, transport.WithHubLogger(log.Printf))
	}

	var peerList []string
	if *peers != "" {
		if *self == "" {
			log.Fatal("treedoc-serve: -peers requires -self (this hub's advertised address)")
		}
		peerList = splitList(*peers)
		opts = append(opts, transport.WithHubShards(*self, peerList))
	}

	docList := splitList(*docs)
	for _, d := range docList {
		if err := transport.ValidateDocID(d); err != nil {
			log.Fatal(err)
		}
	}

	hub, err := transport.ListenHub(*addr, opts...)
	if err != nil {
		log.Fatal(err)
	}
	if peerList != nil {
		log.Printf("treedoc-serve: relaying on %s as shard %s of ring %v", hub.Addr(), *self, peerList)
	} else {
		log.Printf("treedoc-serve: relaying on %s", hub.Addr())
	}

	var archivists []*archivist
	if *logDir != "" {
		stopJanitors := make(chan struct{})
		defer close(stopJanitors)
		site := *archiveSite
		for _, doc := range docList {
			// The hub's own ring decides ownership, so archivist placement
			// and attach redirects can never disagree.
			if owner, owned := hub.DocOwner(doc); !owned {
				log.Printf("treedoc-serve: doc %q owned by %s, skipping local archivist", doc, owner)
				continue
			}
			a := startArchivist(hub.Addr().String(), doc, treedoc.SiteID(site),
				filepath.Join(*logDir, doc), *compactEvery, *snapThreshold)
			archivists = append(archivists, a)
			site--
			if *flattenEvery > 0 {
				go janitor(a, *flattenEvery, *flattenCold, *verbose, stopJanitors)
			}
		}
		if *flattenEvery > 0 {
			log.Printf("treedoc-serve: flatten janitors proposing every %v on %d documents", *flattenEvery, len(archivists))
		}
	} else if *flattenEvery > 0 {
		log.Fatal("treedoc-serve: -flatten-every requires -log (the archivist coordinates the commitment)")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("treedoc-serve: shutting down (%d frames relayed, %d dropped, %d unrouted)",
		hub.Relays(), hub.Drops(), hub.Unrouted())
	stats := hub.DocStats()
	docsSeen := make([]string, 0, len(stats))
	for doc := range stats {
		docsSeen = append(docsSeen, doc)
	}
	sort.Strings(docsSeen)
	for _, doc := range docsSeen {
		st := stats[doc]
		log.Printf("treedoc-serve: doc %q: %d clients, %d relayed, %d dropped", doc, st.Clients, st.Relays, st.Drops)
	}
	for _, a := range archivists {
		a.eng.Stop()
		log.Printf("treedoc-serve: archivist for %q flushed (%d ops applied, %d snapshots served, %d pruned, %d flattens applied)",
			a.doc, a.eng.Applied(), a.eng.SnapshotsSent(), a.eng.Pruned(), a.eng.FlattensApplied())
		if err := a.eng.Err(); err != nil {
			log.Printf("treedoc-serve: archivist for %q error: %v", a.doc, err)
		}
	}
	if err := hub.Close(); err != nil {
		log.Fatal(err)
	}
}

// startArchivist brings up one document's durable replica, attached to
// the local hub through a doc-scoped link.
func startArchivist(hubAddr, doc string, site treedoc.SiteID, dir string, compactEvery, snapThreshold int) *archivist {
	buf, err := treedoc.NewTextBuffer(treedoc.WithSite(site))
	if err != nil {
		log.Fatal(err)
	}
	eng, err := treedoc.NewEngine(site, buf,
		treedoc.WithLogDir(dir),
		treedoc.WithCompactEvery(compactEvery),
		treedoc.WithSnapshotThreshold(snapThreshold),
		treedoc.WithSyncInterval(500*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	link, err := treedoc.DialDoc(hubAddr, doc)
	if err != nil {
		log.Fatal(err)
	}
	eng.Connect(link)
	log.Printf("treedoc-serve: archivist s%d for doc %q persisting to %s (%d runes restored)",
		site, doc, dir, buf.Len())
	return &archivist{doc: doc, buf: buf, eng: eng}
}

// janitor periodically proposes flattening the coldest subtree of one
// archivist's document.
func janitor(a *archivist, every time.Duration, cold int, verbose bool, stop <-chan struct{}) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		a.buf.EndRevision()
		ok, err := a.eng.ProposeFlattenCold(cold)
		if err != nil {
			if !errors.Is(err, transport.ErrStopped) {
				log.Printf("treedoc-serve: doc %q flatten proposal: %v", a.doc, err)
			}
			return
		}
		if ok && verbose {
			log.Printf("treedoc-serve: doc %q proposed cold flatten (committed %d, aborted %d so far)",
				a.doc, a.eng.FlattensCommitted(), a.eng.FlattensAborted())
		}
	}
}

// splitList splits a comma-separated flag, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// Treedoc-serve is the replication hub: a relay server that accepts framed
// TCP connections from Treedoc replicas and fans frames out within
// per-document relay groups. Clients attach to documents with the
// kindHello handshake (treedoc.DialDoc / treedoc.DialSession); a plain
// treedoc.Dial client is a legacy single-document client on the "default"
// document and keeps working unchanged. The hub holds no document state;
// causal buffering at the edges orders, deduplicates and — via each
// engine's periodic anti-entropy exchange — repairs any frames a slow
// client's queue had to drop.
//
// With -log, the hub additionally runs one archivist per owned document:
// an in-process replica backed by a durable operation log under
// <log>/<doc>/ that absorbs everything relayed on that document, compacts
// it behind snapshots, and serves snapshot catch-up to late joiners — so
// a client that connects long after everyone else left still recovers its
// document, without any long-lived peer online.
//
// With -flatten-every, each archivist also acts as its document's flatten
// janitor: on that period it proposes compacting the coldest subtree
// through the commitment protocol (Engine.ProposeFlattenCold). A proposal
// racing a concurrent edit aborts harmlessly and is retried next period.
//
// With -peers (and -self), N hub processes split the document space by
// consistent hashing: an attach for a document another process owns is
// answered with an epoch-stamped redirect, which DialDoc and Session
// clients follow transparently; a client that cannot reach the owner is
// served through hub-to-hub forwarding. Archivists run on the owner.
//
// Ring membership is live. A new hub joins a running ring with -join
// (naming any live member); the ring's epoch advances, every hub adopts
// the announced membership, and each document the change relocates is
// handed off online: frozen briefly, its archivist snapshot + retained
// log suffix streamed to the new owner, attached clients re-pointed via
// an epoch-stamped redirect — no process restarts, no ops lost. With
// -leave, SIGTERM hands every owned document off (Hub.Resign) before the
// process exits.
//
// Usage:
//
//	treedoc-serve -addr :9707 -queue 256 -v
//	treedoc-serve -addr :9707 -log /var/lib/treedoc -docs default,notes,wiki
//	treedoc-serve -addr :9707 -self hub1:9707 -peers hub1:9707,hub2:9707
//	treedoc-serve -addr :9708 -self hub3:9708 -join hub1:9707 -log /var/lib/treedoc -leave
//	treedoc-serve -addr :9707 -stats 127.0.0.1:9780   # hub counters at /debug/vars
//
// Wire a replica to it:
//
//	buf, _ := treedoc.NewTextBuffer(treedoc.WithSite(site))
//	eng, _ := treedoc.NewEngine(site, buf)
//	link, _ := treedoc.DialDoc("host:9707", "notes")
//	eng.Connect(link)
package main

import (
	"errors"
	"expvar"
	"flag"
	"hash/fnv"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/treedoc/treedoc"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/transport"
	"github.com/treedoc/treedoc/internal/transport/shardmap"
)

// archivist is one document's durable replica and (optionally) flatten
// janitor.
type archivist struct {
	doc  string
	site treedoc.SiteID
	buf  *treedoc.TextBuffer
	eng  *treedoc.Engine
	stop chan struct{} // stops the janitor
	// epoch is the highest ring epoch this archivist was (re)acquired at;
	// a stale release (an older epoch's handoff completing late) must not
	// stop it.
	epoch uint64
}

// archConfig is the shared archivist configuration.
type archConfig struct {
	hubAddr       string
	logDir        string
	self          string
	site          uint64 // 0: derive per (self, doc)
	compactEvery  int
	snapThreshold int
	flattenEvery  time.Duration
	flattenCold   int
	verbose       bool
}

// archivists manages the per-document archivist lifecycle: static startup
// for owned -docs, and dynamic start/stop as the ring hands documents to
// and from this hub (the Hub's ownership callback).
type archivists struct {
	// ready is closed once cfg and hub are populated: the ownership
	// callback can fire from hub goroutines as soon as the listener
	// accepts (a peer's ring announce during a rolling restart), so it
	// must wait out main's setup window instead of racing it.
	ready chan struct{}
	cfg   archConfig

	mu  sync.Mutex
	hub *treedoc.Hub
	m   map[string]*archivist
}

// ownership is the Hub callback: a handoff streaming in starts a local
// archivist (registered as the future handoff source) before the state
// frames arrive; a handoff that streamed out stops and unregisters it.
func (am *archivists) ownership(doc string, epoch uint64, acquired bool) {
	<-am.ready
	if am.cfg.logDir == "" {
		return
	}
	if acquired {
		log.Printf("treedoc-serve: acquired doc %q at ring epoch %d", doc, epoch)
		am.ensure(doc, epoch)
		return
	}
	log.Printf("treedoc-serve: released doc %q at ring epoch %d", doc, epoch)
	am.release(doc, epoch)
}

// ensure starts doc's archivist if none runs, raising its acquisition
// epoch either way.
func (am *archivists) ensure(doc string, epoch uint64) {
	am.mu.Lock()
	defer am.mu.Unlock()
	if a := am.m[doc]; a != nil {
		if epoch > a.epoch {
			a.epoch = epoch
		}
		return
	}
	site := am.archiveSite(doc)
	buf, err := treedoc.NewTextBuffer(treedoc.WithSite(site))
	if err != nil {
		log.Printf("treedoc-serve: archivist for %q: %v", doc, err)
		return
	}
	eng, err := treedoc.NewEngine(site, buf,
		treedoc.WithLogDir(filepath.Join(am.cfg.logDir, doc)),
		treedoc.WithCompactEvery(am.cfg.compactEvery),
		treedoc.WithSnapshotThreshold(am.cfg.snapThreshold),
		treedoc.WithSyncInterval(500*time.Millisecond))
	if err != nil {
		log.Printf("treedoc-serve: archivist for %q: %v", doc, err)
		return
	}
	// The loopback attach is the one transient failure point (the hub may
	// be saturated mid-handoff); retry briefly rather than leaving an
	// owned document silently without durability.
	var link treedoc.Link
	for attempt := 0; ; attempt++ {
		link, err = treedoc.DialDoc(am.cfg.hubAddr, doc)
		if err == nil {
			break
		}
		if attempt >= 2 {
			eng.Stop()
			log.Printf("treedoc-serve: archivist for %q attach failed after %d attempts: %v (document is NOT archived here)",
				doc, attempt+1, err)
			return
		}
		log.Printf("treedoc-serve: archivist for %q attach: %v (retrying)", doc, err)
		time.Sleep(time.Second)
	}
	eng.Connect(link)
	a := &archivist{doc: doc, site: site, buf: buf, eng: eng, stop: make(chan struct{}), epoch: epoch}
	am.m[doc] = a
	am.hub.RegisterHandoff(doc, eng)
	log.Printf("treedoc-serve: archivist s%d for doc %q persisting to %s (%d runes restored)",
		site, doc, filepath.Join(am.cfg.logDir, doc), buf.Len())
	if am.cfg.flattenEvery > 0 {
		go janitor(a, am.cfg.flattenEvery, am.cfg.flattenCold, am.cfg.verbose)
	}
}

// release stops doc's archivist after its state streamed to the new
// owner — unless a newer epoch re-acquired the document in the meantime
// (the stale handoff's release must not kill the fresh archivist). The
// durable log directory stays on disk: if the document ever comes back,
// the archivist resumes from it and the handed-off snapshot (which
// dominates) supersedes the stale state.
func (am *archivists) release(doc string, epoch uint64) {
	am.mu.Lock()
	a := am.m[doc]
	if a != nil && epoch != 0 && a.epoch > epoch {
		am.mu.Unlock()
		log.Printf("treedoc-serve: ignoring stale release of doc %q (epoch %d < acquired %d)", doc, epoch, a.epoch)
		return
	}
	if a != nil {
		// Unregister inside the lock: a racing acquisition at a newer epoch
		// re-registers under the same lock, so its fresh source can never
		// be clobbered by this stale release.
		am.hub.RegisterHandoff(doc, nil)
	}
	delete(am.m, doc)
	am.mu.Unlock()
	if a == nil {
		return
	}
	close(a.stop)
	a.eng.Stop()
	log.Printf("treedoc-serve: archivist for %q stopped (%d ops applied, %d snapshots served)",
		a.doc, a.eng.Applied(), a.eng.SnapshotsSent())
	if err := a.eng.Err(); err != nil {
		log.Printf("treedoc-serve: archivist for %q error: %v", a.doc, err)
	}
}

// all snapshots the current archivist set.
func (am *archivists) all() []*archivist {
	am.mu.Lock()
	defer am.mu.Unlock()
	out := make([]*archivist, 0, len(am.m))
	for _, a := range am.m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].doc < out[j].doc })
	return out
}

// archiveSite picks the archivist's site id: the configured base counting
// is replaced by a per-(self, doc) derivation so two hubs that archive the
// same document across a handoff never stamp under the same site id.
func (am *archivists) archiveSite(doc string) treedoc.SiteID {
	if am.cfg.site != 0 {
		return treedoc.SiteID(am.cfg.site)
	}
	h := fnv.New64a()
	h.Write([]byte(am.cfg.self))
	h.Write([]byte{0})
	h.Write([]byte(doc))
	// High site ids keep archivists far away from interactively assigned
	// editor sites; 2^24 derived slots make a collision between the
	// handful of hubs archiving one document negligible.
	return treedoc.SiteID(uint64(ident.MaxSiteID) - h.Sum64()%(1<<24))
}

func main() {
	addr := flag.String("addr", ":9707", "listen address")
	queue := flag.Int("queue", 256, "per-client outbound queue depth")
	verbose := flag.Bool("v", false, "log client connects, disconnects, slow-client drops and handoffs")
	docs := flag.String("docs", transport.DefaultDoc, "comma-separated documents to archive (with -log); clients may attach to any document regardless")
	self := flag.String("self", "", "this hub's advertised address in the shard ring (required with -peers or -join)")
	peers := flag.String("peers", "", "comma-separated advertised addresses of every hub in the shard ring, including this one (empty disables sharding)")
	join := flag.String("join", "", "advertised address of any live ring member: fetch its ring, add this hub at the next epoch, and announce (live reshard; requires -self)")
	leave := flag.Bool("leave", false, "on SIGTERM, hand every owned document off to the surviving ring (Hub.Resign) before exiting")
	logDir := flag.String("log", "", "archivist log directory; each document persists under <log>/<doc>/ (empty disables archivists)")
	archiveSite := flag.Uint64("archive-site", 0, "fixed site id for archivist replicas (0: derive one per hub+document, so handoffs never reuse a site id)")
	compactEvery := flag.Int("compact", 16384, "archivist: retained ops before snapshot+truncate")
	snapThreshold := flag.Int("snap-threshold", 8192, "archivist: digest gap that triggers snapshot catch-up")
	flattenEvery := flag.Duration("flatten-every", 0, "archivist: period between cold-subtree flatten proposals per document (0 disables; requires -log)")
	flattenCold := flag.Int("flatten-cold", 2, "archivist: revisions a subtree must be quiet before it is proposed")
	statsAddr := flag.String("stats", "", "HTTP listen address for the expvar stats endpoint (/debug/vars serves hub counters as JSON; empty disables)")
	flag.Parse()

	if *flattenEvery > 0 && *logDir == "" {
		log.Fatal("treedoc-serve: -flatten-every requires -log (the archivist coordinates the commitment)")
	}
	if *peers != "" && *self == "" {
		log.Fatal("treedoc-serve: -peers requires -self (this hub's advertised address)")
	}
	if *join != "" && *self == "" {
		log.Fatal("treedoc-serve: -join requires -self (this hub's advertised address)")
	}
	if *join != "" && *peers != "" {
		log.Fatal("treedoc-serve: -join and -peers are mutually exclusive (join fetches the ring)")
	}

	docList := splitList(*docs)
	for _, d := range docList {
		if err := transport.ValidateDocID(d); err != nil {
			log.Fatal(err)
		}
	}

	am := &archivists{ready: make(chan struct{}), m: make(map[string]*archivist)}
	opts := []transport.HubOption{
		transport.WithHubQueueDepth(*queue),
		transport.WithHubOwnership(am.ownership),
	}
	if *verbose {
		opts = append(opts, transport.WithHubLogger(log.Printf))
	}
	if *peers != "" {
		opts = append(opts, transport.WithHubShards(*self, splitList(*peers)))
	} else if *self != "" {
		opts = append(opts, transport.WithHubSelf(*self))
	}

	hub, err := transport.ListenHub(*addr, opts...)
	if err != nil {
		log.Fatal(err)
	}
	am.hub = hub
	am.cfg = archConfig{
		hubAddr:       hub.Addr().String(),
		logDir:        *logDir,
		self:          *self,
		site:          *archiveSite,
		compactEvery:  *compactEvery,
		snapThreshold: *snapThreshold,
		flattenEvery:  *flattenEvery,
		flattenCold:   *flattenCold,
		verbose:       *verbose,
	}
	if am.cfg.self == "" {
		am.cfg.self = am.cfg.hubAddr
	}
	close(am.ready)

	// Stats endpoint: the stdlib expvar handler over a dedicated listener
	// (never the relay port), publishing Hub.Stats under "treedoc.hub".
	// GET /debug/vars returns one JSON object; see docs/OPERATIONS.md for
	// reading the counters.
	if *statsAddr != "" {
		expvar.Publish("treedoc.hub", expvar.Func(func() any { return hub.Stats() }))
		// One EngineStats per live archivist document: the digest
		// suppression and replay counters live on the engine, not the hub.
		expvar.Publish("treedoc.engines", expvar.Func(func() any {
			am.mu.Lock()
			defer am.mu.Unlock()
			out := make(map[string]treedoc.EngineStats, len(am.m))
			for doc, a := range am.m {
				out[doc] = a.eng.Stats()
			}
			return out
		}))
		sln, err := net.Listen("tcp", *statsAddr)
		if err != nil {
			log.Fatalf("treedoc-serve: stats listener: %v", err)
		}
		log.Printf("stats endpoint on http://%s/debug/vars", sln.Addr())
		go func() {
			mux := http.NewServeMux()
			mux.Handle("/debug/vars", expvar.Handler())
			srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
			if err := srv.Serve(sln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("treedoc-serve: stats server: %v", err)
			}
		}()
	}

	// Joining a live ring: fetch the current membership from any member,
	// mint the next epoch with this hub added, and adopt it —
	// ConfigureRing announces it to every member, and each of them hands
	// off the documents the change relocates.
	if *join != "" {
		// Verify-and-remint: a concurrent join (or any racing announce) can
		// take the minted epoch first — ConfigureRing then no-ops on the
		// equal epoch — so re-query and mint higher until a ring containing
		// this hub is actually installed.
		joined := false
		for attempt := 0; attempt < 5 && !joined; attempt++ {
			cur, err := transport.QueryRing(*join, 5*time.Second)
			if err != nil {
				log.Fatalf("treedoc-serve: ring query to %s: %v", *join, err)
			}
			nodes := cur.Nodes
			epoch := cur.Epoch
			if installed := hub.Ring(); installed != nil && installed.Epoch > epoch {
				// This hub already heard a newer ring than the queried member.
				nodes, epoch = installed.Nodes, installed.Epoch
			}
			present := false
			for _, n := range nodes {
				if n == *self {
					present = true
					break
				}
			}
			if !present {
				nodes = append(append([]string{}, nodes...), *self)
			}
			ring, err := shardmap.NewRing(epoch+1, nodes)
			if err != nil {
				log.Fatalf("treedoc-serve: joined ring invalid: %v", err)
			}
			if err := hub.ConfigureRing(*self, ring); err != nil {
				log.Printf("treedoc-serve: join attempt %d: %v (retrying)", attempt+1, err)
				continue
			}
			if installed := hub.Ring(); installed != nil && installed.Has(*self) {
				log.Printf("treedoc-serve: joined ring at epoch %d (%d nodes) via %s",
					installed.Epoch, len(installed.Nodes), *join)
				joined = true
			}
		}
		if !joined {
			log.Fatalf("treedoc-serve: could not join the ring via %s (concurrent membership changes kept winning)", *join)
		}
	}

	if epoch := hub.RingEpoch(); epoch > 0 {
		log.Printf("treedoc-serve: relaying on %s as shard %s (ring epoch %d)", hub.Addr(), *self, epoch)
	} else {
		log.Printf("treedoc-serve: relaying on %s", hub.Addr())
	}

	// Static archivists for the configured documents this hub owns; the
	// ownership callback grows and shrinks the set as the ring changes.
	if *logDir != "" {
		for _, doc := range docList {
			if owner, owned := hub.DocOwner(doc); !owned {
				log.Printf("treedoc-serve: doc %q owned by %s, skipping local archivist", doc, owner)
				continue
			}
			am.ensure(doc, hub.RingEpoch())
		}
		if *flattenEvery > 0 {
			log.Printf("treedoc-serve: flatten janitors proposing every %v", *flattenEvery)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	if *leave && hub.RingEpoch() > 0 {
		log.Printf("treedoc-serve: leaving the ring: handing off %d archived documents", len(am.all()))
		if err := hub.Resign(30 * time.Second); err != nil {
			log.Printf("treedoc-serve: resign: %v (surviving hubs heal via anti-entropy)", err)
		}
	}

	log.Printf("treedoc-serve: shutting down (%d frames relayed, %d dropped, %d unrouted, %d forwarded, %d handoffs out, %d in)",
		hub.Relays(), hub.Drops(), hub.Unrouted(), hub.Forwards(), hub.HandoffsOut(), hub.HandoffsIn())
	stats := hub.DocStats()
	docsSeen := make([]string, 0, len(stats))
	for doc := range stats {
		docsSeen = append(docsSeen, doc)
	}
	sort.Strings(docsSeen)
	for _, doc := range docsSeen {
		st := stats[doc]
		log.Printf("treedoc-serve: doc %q: %d clients, %d relayed, %d dropped", doc, st.Clients, st.Relays, st.Drops)
	}
	for _, a := range am.all() {
		am.release(a.doc, 0)
	}
	if err := hub.Close(); err != nil {
		log.Fatal(err)
	}
}

// janitor periodically proposes flattening the coldest subtree of one
// archivist's document, until the archivist is released.
func janitor(a *archivist, every time.Duration, cold int, verbose bool) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-ticker.C:
		}
		a.buf.EndRevision()
		ok, err := a.eng.ProposeFlattenCold(cold)
		if err != nil {
			if !errors.Is(err, transport.ErrStopped) {
				log.Printf("treedoc-serve: doc %q flatten proposal: %v", a.doc, err)
			}
			return
		}
		if ok && verbose {
			log.Printf("treedoc-serve: doc %q proposed cold flatten (committed %d, aborted %d so far)",
				a.doc, a.eng.FlattensCommitted(), a.eng.FlattensAborted())
		}
	}
}

// splitList splits a comma-separated flag, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// Treedoc-load is the open-loop load and chaos harness: it spawns a
// sharded hub fleet as child processes (each behind a fault-injection
// proxy), drives thousands of concurrent client sessions against it with
// realistic edit mixes, measures per-operation stamp→deliver latency in a
// lock-free histogram, and writes a machine-readable load-report.json.
// It is the instrument the paper's central claim — commutativity keeps
// latency flat as concurrency grows — is checked with, and the regression
// gate every scaling change is judged against (see docs/OPERATIONS.md and
// docs/ARCHITECTURE.md §12).
//
// The generator is open-loop: each client emits edits on its own clock at
// -rate regardless of delivery progress, so queueing delay shows up as
// latency instead of silently throttling the workload (closed-loop
// generators hide exactly the collapse this tool exists to catch). Edit
// shapes come from internal/trace: typing bursts with cursor locality,
// occasional long-range jumps, paste storms, deletes; -skew assigns
// clients to documents uniformly or Zipf-hot.
//
// Latency is measured stamp→deliver: the sender embeds a monotonic
// timestamp in each inserted atom, and every other replica of that
// document records the elapsed time when the operation is applied to its
// local Doc. All clients live in this one process, so the stamps share a
// clock and the measurement needs no wire-protocol support.
//
// On top of steady state, -scenario composes one chaos event per run —
// live resharding under writers (join then leave), hub crash (SIGKILL +
// restart), a slow hub link (injected latency, the slow-client
// backpressure shape), or a hub partition — and asserts an envelope
// after healing: no lost operations (every replica's vector clock covers
// every op each writer broadcast), convergence (identical content across
// each document's replicas), and p99 recovery within -recover-within.
//
// Usage:
//
//	treedoc-load -hubs 3 -sessions 2000 -docs 64 -rate 0.2 -duration 30s
//	treedoc-load -scenario reshard -sessions 200 -docs 16 -duration 45s
//	treedoc-load -scenario crash -report crash-report.json
//
// Every flag is documented in docs/OPERATIONS.md; the report schema and
// envelope definitions are in docs/ARCHITECTURE.md §12.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/treedoc/treedoc/internal/trace"
)

// config is the parsed flag set for a load run.
type config struct {
	hubs     int
	sessions int
	docs     int
	rate     float64
	duration time.Duration
	pool     int
	skew     float64
	seed     int64
	sync     time.Duration
	queue    int

	mix trace.Mix

	scenario     string
	chaosAt      time.Duration
	healAfter    time.Duration
	chaosLatency time.Duration

	sloP99         time.Duration
	recoverWithin  time.Duration
	quiesceTimeout time.Duration

	report     string
	statsEvery time.Duration
	verbose    bool
}

func main() {
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	log.SetPrefix("treedoc-load: ")

	// Hidden hub-child mode: the fleet re-execs this binary as its hub
	// processes, so the harness needs no external server binary. These
	// flags are an internal protocol, not an operator surface.
	child := flag.Bool("hub-child", false, "internal: run as a fleet hub process")
	childAddr := flag.String("hub-addr", "", "internal: hub listen address")
	childSelf := flag.String("hub-self", "", "internal: hub advertised (proxy) address")
	childPeers := flag.String("hub-peers", "", "internal: comma-separated advertised ring members")
	childJoin := flag.String("hub-join", "", "internal: live ring member to join via")
	childQueue := flag.Int("hub-queue", 256, "internal: hub per-client queue depth")
	childVerbose := flag.Bool("hub-v", false, "internal: hub connection logging")

	var cfg config
	flag.IntVar(&cfg.hubs, "hubs", 3, "hub processes in the fleet (each behind a chaos proxy)")
	flag.IntVar(&cfg.sessions, "sessions", 2000, "concurrent client sessions (one replica + engine each)")
	flag.IntVar(&cfg.docs, "docs", 32, "documents the clients spread across")
	flag.Float64Var(&cfg.rate, "rate", 0.5, "open-loop edit actions per second per client")
	flag.DurationVar(&cfg.duration, "duration", 60*time.Second, "steady-state write window")
	flag.IntVar(&cfg.pool, "pool", 512, "max hub sessions in the shared dial pool (must be >= clients on the hottest doc)")
	flag.Float64Var(&cfg.skew, "skew", 1.2, "doc assignment skew: 0 uniform, >1 Zipf exponent (hot docs)")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload seed (doc assignment and every client's edit stream)")
	flag.DurationVar(&cfg.sync, "sync", 5*time.Second, "client anti-entropy interval (digest traffic grows with clients-per-doc squared)")
	flag.IntVar(&cfg.queue, "queue", 256, "queue depth for hub per-client and engine per-peer queues")

	cfg.mix = trace.DefaultMix()
	flag.IntVar(&cfg.mix.TypistRun, "typist-run", cfg.mix.TypistRun, "mean typing-burst length (consecutive single-atom inserts)")
	flag.Float64Var(&cfg.mix.JumpProb, "jump-prob", cfg.mix.JumpProb, "per-action probability of a long-range cursor jump")
	flag.Float64Var(&cfg.mix.PasteProb, "paste-prob", cfg.mix.PasteProb, "per-action probability of a paste storm")
	flag.Float64Var(&cfg.mix.DeleteProb, "delete-prob", cfg.mix.DeleteProb, "per-action probability of a delete")
	flag.IntVar(&cfg.mix.AtomBytes, "atom-bytes", cfg.mix.AtomBytes, "mean inserted atom size in bytes (before the latency stamp)")

	flag.StringVar(&cfg.scenario, "scenario", "steady", "chaos scenario: steady, reshard, crash, slow, partition")
	flag.DurationVar(&cfg.chaosAt, "chaos-at", 0, "when the chaos event fires (0: duration/3)")
	flag.DurationVar(&cfg.healAfter, "heal-after", 10*time.Second, "how long the fault lasts before healing")
	flag.DurationVar(&cfg.chaosLatency, "chaos-latency", 200*time.Millisecond, "injected one-way link latency for -scenario slow")

	flag.DurationVar(&cfg.sloP99, "slo-p99", 0, "steady-state p99 SLO asserted over the whole run (0 disables)")
	flag.DurationVar(&cfg.recoverWithin, "recover-within", 30*time.Second, "p99 must return to the recovery threshold within this long after heal")
	flag.DurationVar(&cfg.quiesceTimeout, "quiesce-timeout", 90*time.Second, "max wait for all replicas to converge after writers stop")

	flag.StringVar(&cfg.report, "report", "load-report.json", "machine-readable report path")
	flag.DurationVar(&cfg.statsEvery, "stats-every", 5*time.Second, "hub expvar stats poll period")
	flag.BoolVar(&cfg.verbose, "v", false, "log fleet lifecycle, reconnects and chaos events")
	flag.Parse()

	if *child {
		hubChildMain(hubChildConfig{
			addr:    *childAddr,
			self:    *childSelf,
			peers:   *childPeers,
			join:    *childJoin,
			queue:   *childQueue,
			verbose: *childVerbose,
		})
		return
	}

	if err := validate(&cfg); err != nil {
		log.Fatal(err)
	}
	rep, err := run(&cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := writeReport(cfg.report, rep); err != nil {
		log.Fatal(err)
	}
	printSummary(rep)
	if !rep.Passed {
		os.Exit(1)
	}
}

func validate(cfg *config) error {
	if cfg.hubs < 1 || cfg.sessions < 1 || cfg.docs < 1 {
		return fmt.Errorf("-hubs, -sessions and -docs must be >= 1")
	}
	if cfg.rate <= 0 {
		return fmt.Errorf("-rate must be > 0")
	}
	if cfg.pool < 1 {
		return fmt.Errorf("-pool must be >= 1")
	}
	if err := cfg.mix.Validate(); err != nil {
		return err
	}
	switch cfg.scenario {
	case "steady", "reshard", "crash", "slow", "partition":
	default:
		return fmt.Errorf("unknown -scenario %q (steady, reshard, crash, slow, partition)", cfg.scenario)
	}
	if cfg.chaosAt == 0 {
		cfg.chaosAt = cfg.duration / 3
	}
	if cfg.scenario != "steady" && cfg.chaosAt+cfg.healAfter >= cfg.duration {
		return fmt.Errorf("-chaos-at (%v) + -heal-after (%v) must fit inside -duration (%v) so recovery is observable",
			cfg.chaosAt, cfg.healAfter, cfg.duration)
	}
	if cfg.scenario == "crash" && cfg.hubs < 2 {
		return fmt.Errorf("-scenario crash needs -hubs >= 2 (a surviving hub)")
	}
	if (cfg.scenario == "partition" || cfg.scenario == "slow") && cfg.hubs < 2 {
		return fmt.Errorf("-scenario %s needs -hubs >= 2", cfg.scenario)
	}
	return nil
}

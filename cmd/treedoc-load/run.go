package main

import (
	"context"
	"log"
	"sync"
	"time"
)

// run executes one load run end to end: fleet up, clients attached,
// open-loop write window with the chaos schedule overlaid, quiesce and
// envelope checks, report assembly, teardown.
func run(cfg *config) (*Report, error) {
	started := time.Now()
	log.Printf("starting %d-hub fleet (scenario %s)", cfg.hubs, cfg.scenario)
	f, err := startFleet(cfg)
	if err != nil {
		return nil, err
	}
	defer f.stop()

	m := newMetrics(cfg.duration + cfg.quiesceTimeout)
	pool := newSessionPool(f.advertised(), cfg.pool)
	defer pool.closeAll()

	supStop := make(chan struct{})
	supStopped := false
	stopSup := func() {
		if !supStopped {
			supStopped = true
			close(supStop)
		}
	}
	defer stopSup()

	log.Printf("attaching %d clients across %d docs (pool cap %d)", cfg.sessions, cfg.docs, cfg.pool)
	clients, err := fleetClients(cfg, pool, m, supStop, cfg.verbose)
	if err != nil {
		return nil, err
	}
	defer stopEngines(clients)
	log.Printf("attached: %d sessions in pool", pool.size())

	// Hub counter polling: one sample per hub per -stats-every, plus a
	// final sample after quiesce. A down hub (crash window) leaves a gap.
	pollCtx, pollCancel := context.WithCancel(context.Background())
	defer pollCancel()
	var (
		seriesMu sync.Mutex
		series   = make([]HubSeries, len(f.hubs))
	)
	for i, h := range f.hubs {
		series[i].Hub = h.adv
	}
	sample := func() {
		for i, h := range f.hubs {
			hs, err := h.pollStats()
			if err != nil {
				continue
			}
			seriesMu.Lock()
			series[i].Samples = append(series[i].Samples, HubSample{
				OffsetSec: time.Since(started).Seconds(), Stats: hs,
			})
			seriesMu.Unlock()
		}
	}
	go func() {
		tick := time.NewTicker(cfg.statsEvery)
		defer tick.Stop()
		for {
			select {
			case <-pollCtx.Done():
				return
			case <-tick.C:
				sample()
			}
		}
	}()

	ch := newChaos(cfg, f)
	wctx, wcancel := context.WithCancel(context.Background())
	var writers sync.WaitGroup
	for _, c := range clients {
		writers.Add(1)
		go func(c *client) {
			defer writers.Done()
			c.write(wctx, cfg, m)
		}(c)
	}
	log.Printf("write window open: %v at %.2f ops/s/client (open loop)", cfg.duration, cfg.rate)
	ch.schedule()

	time.Sleep(cfg.duration)
	wcancel()
	writers.Wait()
	<-ch.done
	log.Printf("write window closed: %d sends, %d deliveries so far; quiescing (timeout %v)",
		m.sends.Load(), m.deliveries.Load(), cfg.quiesceTimeout)

	env := checkEnvelopes(cfg, clients, m, ch)
	stopSup()
	sample() // final post-quiesce counters
	pollCancel()

	rep := buildReport(cfg, clients, m, series, env, ch, started)
	rep.PoolSessions = pool.size()
	return rep, nil
}

// stopEngines stops every client engine on a worker pool: each Stop
// drains queues with a bounded deadline, and thousands of sequential
// drains would turn teardown into the longest phase of the run.
func stopEngines(clients []*client) {
	sem := make(chan struct{}, 64)
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		sem <- struct{}{}
		go func(c *client) {
			defer wg.Done()
			defer func() { <-sem }()
			c.eng.Stop()
		}(c)
	}
	wg.Wait()
}

package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/treedoc/treedoc"
	"github.com/treedoc/treedoc/internal/loadstats"
	"github.com/treedoc/treedoc/internal/trace"
	"github.com/treedoc/treedoc/internal/transport"
)

// metrics is the run-wide measurement sink shared by every client:
// recording is wait-free, so thousands of engine goroutines write into it
// directly.
type metrics struct {
	base     time.Time // stamp epoch: all clients share this process clock
	hist     *loadstats.Hist
	timeline *loadstats.Timeline

	sends      atomic.Uint64 // ops broadcast by all writers
	deliveries atomic.Uint64 // remote ops measured on apply

	mu     sync.Mutex
	perDoc map[string]*atomic.Uint64 // guarded by mu (map shape only; counters are atomic)
}

func newMetrics(duration time.Duration) *metrics {
	// One window per second, with slack past the write window for the
	// quiesce tail (late deliveries land there instead of the last write
	// second, keeping recovery windows honest).
	n := int(duration/time.Second) + 120
	return &metrics{
		base:     time.Now(),
		hist:     loadstats.New(),
		timeline: loadstats.NewTimeline(time.Second, n),
		perDoc:   make(map[string]*atomic.Uint64),
	}
}

// stamp returns the monotonic nanosecond timestamp embedded in atoms.
func (m *metrics) stamp() int64 { return int64(time.Since(m.base)) }

// docCounter interns the per-doc delivery counter.
func (m *metrics) docCounter(doc string) *atomic.Uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.perDoc[doc]
	if c == nil {
		c = &atomic.Uint64{}
		m.perDoc[doc] = c
	}
	return c
}

// record is the deliver-side measurement point.
func (m *metrics) record(sentAt int64, docDeliveries *atomic.Uint64) {
	d := time.Duration(m.stamp() - sentAt)
	m.hist.Record(d)
	m.timeline.Record(time.Now(), d)
	m.deliveries.Add(1)
	docDeliveries.Add(1)
}

// measuredDoc wraps a client's replica: remote inserts carry a stamp
// prefix in their atom, parsed and recorded on apply. It must implement
// the full Snapshotter contract — an engine whose replica cannot install
// snapshots silently never converges through snapshot catch-up, which the
// chaos scenarios rely on after long partitions.
type measuredDoc struct {
	doc  *treedoc.Doc
	site treedoc.SiteID
	m    *metrics
	docC *atomic.Uint64
}

var _ transport.BatchApplier = (*measuredDoc)(nil)
var _ transport.Snapshotter = (*measuredDoc)(nil)

// observe parses the stamp prefix of a remote insert's atom. Deletes
// carry no atom and local ops are the sender's own.
func (d *measuredDoc) observe(op treedoc.Op) {
	if op.Site == d.site || op.Atom == "" {
		return
	}
	i := strings.IndexByte(op.Atom, '|')
	if i <= 0 {
		return
	}
	sentAt, err := strconv.ParseInt(op.Atom[:i], 10, 64)
	if err != nil {
		return
	}
	d.m.record(sentAt, d.docC)
}

func (d *measuredDoc) Apply(op treedoc.Op) error {
	d.observe(op)
	return d.doc.Apply(op)
}

func (d *measuredDoc) ApplyBatch(ops []treedoc.Op) (int, error) {
	for i := range ops {
		d.observe(ops[i])
	}
	return d.doc.ApplyBatch(ops)
}

func (d *measuredDoc) Snapshot() ([]byte, treedoc.Version, error) { return d.doc.Snapshot() }

func (d *measuredDoc) InstallSnapshot(data []byte) (treedoc.Version, error) {
	// Atoms arriving via snapshot skip Apply, so their latency is not
	// measured — catch-up state transfer is not per-op delivery.
	return d.doc.InstallSnapshot(data)
}

// watchedLink wraps a doc link so the client's supervisor hears about
// link death (the engine itself just marks the peer dead and moves on).
type watchedLink struct {
	transport.Link
	dead chan struct{}
	once sync.Once
}

func watchLink(l transport.Link) *watchedLink {
	return &watchedLink{Link: l, dead: make(chan struct{})}
}

func (w *watchedLink) note() { w.once.Do(func() { close(w.dead) }) }

// RoutesReplay forwards the wrapped link's directed-answer capability:
// embedding the Link interface hides the concrete link's methods, and
// without this the engine would fall back to broadcast answers — the
// exact hot-doc amplification the load harness exists to measure.
func (w *watchedLink) RoutesReplay() bool {
	rr, ok := w.Link.(transport.ReplayRouter)
	return ok && rr.RoutesReplay()
}

func (w *watchedLink) Recv() ([]byte, error) {
	f, err := w.Link.Recv()
	if err != nil {
		w.note()
		return f, fmt.Errorf("treedoc-load: watched link recv: %w", err)
	}
	return f, nil
}

func (w *watchedLink) Send(f []byte) error {
	if err := w.Link.Send(f); err != nil {
		w.note()
		return fmt.Errorf("treedoc-load: watched link send: %w", err)
	}
	return nil
}

// sessionPool is the bounded dial pool: a growable slice of Sessions with
// primaries round-robined across the fleet. A Session carries at most one
// link per document, so the pool's effective bound is the client count of
// the hottest document — attach probes forward from the client's slot
// until a session takes the doc.
type sessionPool struct {
	addrs []string
	max   int

	mu       sync.Mutex
	sessions []*transport.Session // guarded by mu
}

func newSessionPool(addrs []string, max int) *sessionPool {
	return &sessionPool{addrs: addrs, max: max}
}

// session returns pool slot i, creating it (and any gap below) lazily.
func (p *sessionPool) session(i int) *transport.Session {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.sessions) <= i {
		primary := p.addrs[len(p.sessions)%len(p.addrs)]
		p.sessions = append(p.sessions, transport.DialSession(primary))
	}
	return p.sessions[i]
}

// attach finds a session for doc starting at slot start: the slot itself
// first (a reattaching client's old slot is free again once its dead link
// closed), then forward probes for a session without the doc and with a
// reachable hub. Extra probes past max cover the case where start's
// primary is the faulted hub.
func (p *sessionPool) attach(doc string, start int) (transport.Link, *transport.Session, error) {
	probes := p.max + len(p.addrs)
	var lastErr error
	for off := 0; off < probes; off++ {
		i := (start + off) % probes
		s := p.session(i)
		link, err := s.Attach(doc)
		if err == nil {
			return link, s, nil
		}
		lastErr = err
	}
	return nil, nil, fmt.Errorf("treedoc-load: no session slot for doc %q after %d probes: %w", doc, probes, lastErr)
}

func (p *sessionPool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.sessions)
}

func (p *sessionPool) closeAll() {
	p.mu.Lock()
	sessions := p.sessions
	p.sessions = nil
	p.mu.Unlock()
	for _, s := range sessions {
		s.Close()
	}
}

// client is one simulated editor: a Doc replica, an Engine, an edit
// stream, and a supervisor that reattaches through the pool when its hub
// connection dies.
type client struct {
	id      int
	site    treedoc.SiteID
	doc     string
	slot    int // pool slot (per-doc index)
	replica *treedoc.Doc
	md      *measuredDoc
	eng     *transport.Engine
	stream  *trace.Stream

	sent       atomic.Uint64 // ops broadcast (the no-lost-ops expectation)
	reconnects atomic.Uint64
}

// fleetClients builds, attaches and wires every client. Attaches run on a
// small worker pool: each is a hello round trip (possibly with redirect
// hops), and thousands of them sequentially would dominate startup.
// Supervisors run until supStop closes — which must happen only after the
// quiesce phase, because post-heal convergence depends on crashed-hub
// clients reattaching.
func fleetClients(cfg *config, pool *sessionPool, m *metrics, supStop <-chan struct{}, verbose bool) ([]*client, error) {
	docNames := make([]string, cfg.docs)
	for i := range docNames {
		docNames[i] = fmt.Sprintf("load-%03d", i)
	}
	picker, err := trace.NewDocPicker(docNames, cfg.skew, cfg.seed)
	if err != nil {
		return nil, err
	}

	clients := make([]*client, cfg.sessions)
	slots := make(map[string]int, cfg.docs)
	for i := range clients {
		doc := picker.Pick()
		slot := slots[doc]
		slots[doc]++
		if slots[doc] > cfg.pool {
			return nil, fmt.Errorf("treedoc-load: doc %q needs %d sessions but -pool is %d (raise -pool or -docs, or lower -skew)",
				doc, slots[doc], cfg.pool)
		}
		site := treedoc.SiteID(i + 1)
		replica, err := treedoc.New(treedoc.WithSite(site))
		if err != nil {
			return nil, err
		}
		stream, err := trace.NewStream(cfg.mix, cfg.seed+int64(i)*7919, fmt.Sprintf("c%d", i))
		if err != nil {
			return nil, err
		}
		md := &measuredDoc{doc: replica, site: site, m: m, docC: m.docCounter(doc)}
		eng, err := transport.NewEngine(site, md,
			transport.WithSyncInterval(cfg.sync),
			transport.WithQueueDepth(cfg.queue))
		if err != nil {
			return nil, err
		}
		clients[i] = &client{
			id: i, site: site, doc: doc, slot: slot,
			replica: replica, md: md, eng: eng, stream: stream,
		}
	}

	var (
		wg      sync.WaitGroup
		sem     = make(chan struct{}, 32)
		errOnce sync.Once
		firstEr error
	)
	for _, c := range clients {
		wg.Add(1)
		sem <- struct{}{}
		go func(c *client) {
			defer wg.Done()
			defer func() { <-sem }()
			link, _, err := pool.attach(c.doc, c.slot)
			if err != nil {
				errOnce.Do(func() { firstEr = err })
				return
			}
			w := watchLink(link)
			c.eng.Connect(w)
			go c.supervise(w, pool, supStop, verbose)
		}(c)
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return clients, nil
}

// supervise reattaches the client after link death: close the dead link
// (freeing the session's doc slot), back off with jitter, probe the pool
// for a new attach — possibly landing on a different hub or on a
// forwarded path while the owner is down — and hand the engine the new
// link. The engine's own anti-entropy then repairs whatever the outage
// dropped. Runs until stop closes (after quiesce, before Engine.Stop).
func (c *client) supervise(w *watchedLink, pool *sessionPool, stop <-chan struct{}, verbose bool) {
	rng := rand.New(rand.NewSource(int64(c.id)*104729 + 17))
	for {
		select {
		case <-w.dead:
		case <-stop:
			return
		}
		select {
		case <-stop:
			return
		default:
		}
		w.Link.Close()
		c.reconnects.Add(1)
		for attempt := 0; ; attempt++ {
			delay := time.Duration(200+rng.Intn(400))*time.Millisecond + time.Duration(attempt)*100*time.Millisecond
			if delay > 2*time.Second {
				delay = 2 * time.Second
			}
			select {
			case <-stop:
				return
			case <-time.After(delay):
			}
			link, _, err := pool.attach(c.doc, c.slot)
			if err != nil {
				if verbose && attempt%10 == 0 {
					log.Printf("client %d: reattach %q failed (attempt %d): %v", c.id, c.doc, attempt+1, err)
				}
				continue
			}
			w = watchLink(link)
			c.eng.Connect(w)
			break
		}
	}
}

// write runs the client's open-loop edit clock until ctx is done: every
// tick generates the next trace action against the live replica and
// broadcasts the resulting ops with a stamp embedded in each inserted
// atom. Ticks fire on the client's own schedule regardless of delivery
// progress; only the engine's bounded inbox can exert backpressure, at
// which point the generator degrades toward closed-loop instead of
// growing unbounded memory.
func (c *client) write(ctx context.Context, cfg *config, m *metrics) {
	interval := time.Duration(float64(time.Second) / cfg.rate)
	// Jittered start de-phases the fleet so ticks don't stampede.
	jitter := time.Duration(rand.New(rand.NewSource(int64(c.id))).Int63n(int64(interval)))
	select {
	case <-ctx.Done():
		return
	case <-time.After(jitter):
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		edit := c.stream.Next(c.replica.Len())
		var ops []treedoc.Op
		for i := 0; i < edit.Del; i++ {
			op, err := c.replica.DeleteAt(edit.Pos)
			if err != nil {
				break // a concurrent remote delete shrank the doc under us
			}
			ops = append(ops, op)
		}
		if len(edit.Ins) > 0 {
			atoms := make([]string, len(edit.Ins))
			stamp := m.stamp()
			for i, a := range edit.Ins {
				atoms[i] = strconv.FormatInt(stamp, 10) + "|" + a
			}
			pos := edit.Pos
			if l := c.replica.Len(); pos > l {
				pos = l
			}
			ins, err := c.replica.InsertRunAt(pos, atoms)
			if err == nil {
				ops = append(ops, ins...)
			}
		}
		if len(ops) == 0 {
			continue
		}
		if err := c.eng.Broadcast(ops...); err != nil {
			return // engine stopped
		}
		c.sent.Add(uint64(len(ops)))
		m.sends.Add(uint64(len(ops)))
	}
}

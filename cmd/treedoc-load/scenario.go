package main

import (
	"fmt"
	"hash/fnv"
	"log"
	"sort"
	"time"
)

// chaos drives one scenario's inject/heal schedule against the fleet and
// records the event times the envelope checks anchor on.
type chaos struct {
	cfg   *config
	fleet *fleet

	injectedAt time.Time
	healedAt   time.Time
	done       chan struct{}
}

func newChaos(cfg *config, f *fleet) *chaos {
	return &chaos{cfg: cfg, fleet: f, done: make(chan struct{})}
}

// victim returns the hub the fault targets. Hub 0 stays healthy: it is
// the reshard join's query target and the anchor a degraded fleet heals
// around.
func (ch *chaos) victim() *hubProc { return ch.fleet.hubs[len(ch.fleet.hubs)-1] }

// schedule runs the scenario on its own timer goroutine; close of done
// means both inject and heal have happened (validate guarantees they fit
// inside the write window).
func (ch *chaos) schedule() {
	go func() {
		defer close(ch.done)
		if ch.cfg.scenario == "steady" {
			return
		}
		time.Sleep(ch.cfg.chaosAt)
		ch.injectedAt = time.Now()
		ch.inject()
		time.Sleep(ch.cfg.healAfter)
		ch.heal()
		ch.healedAt = time.Now()
	}()
}

func (ch *chaos) inject() {
	switch ch.cfg.scenario {
	case "reshard":
		log.Printf("chaos: joining a 4th hub to the live ring (reshard under writers)")
		if _, err := ch.fleet.addJoiner(); err != nil {
			log.Printf("chaos: join failed: %v", err)
		}
	case "crash":
		v := ch.victim()
		log.Printf("chaos: SIGKILL hub %d (%s)", v.idx, v.adv)
		if err := ch.fleet.crash(v); err != nil {
			log.Printf("chaos: crash failed: %v", err)
		}
	case "slow":
		v := ch.victim()
		log.Printf("chaos: injecting %v one-way latency at hub %d", ch.cfg.chaosLatency, v.idx)
		v.proxy.SetLatency(ch.cfg.chaosLatency)
	case "partition":
		v := ch.victim()
		log.Printf("chaos: partitioning hub %d (%s) from clients and mesh", v.idx, v.adv)
		v.proxy.Partition()
	}
}

func (ch *chaos) heal() {
	switch ch.cfg.scenario {
	case "reshard":
		if j := ch.fleet.joiner; j != nil {
			log.Printf("chaos: hub %d leaving the ring (resign + handoff under writers)", j.idx)
			if err := ch.fleet.leave(j, 60*time.Second); err != nil {
				log.Printf("chaos: leave failed: %v", err)
			}
		}
	case "crash":
		v := ch.victim()
		log.Printf("chaos: restarting hub %d on %s", v.idx, v.addr)
		if err := ch.fleet.restart(v); err != nil {
			log.Printf("chaos: restart failed: %v", err)
		}
	case "slow":
		ch.victim().proxy.SetLatency(0)
		log.Printf("chaos: latency cleared at hub %d", ch.victim().idx)
	case "partition":
		ch.victim().proxy.Heal()
		log.Printf("chaos: partition healed at hub %d", ch.victim().idx)
	}
}

// envelope is the post-run verdict the chaos scenarios (and the steady
// SLO) are judged by.
type envelope struct {
	NoLostOps       bool
	Converged       bool
	QuiesceSeconds  float64
	RecoveredWithin time.Duration // -1: never recovered inside the write window
	RecoveryP99Max  time.Duration // the threshold recovery was judged against
	Details         []string
}

// checkEnvelopes waits for the fleet of replicas to quiesce, then asserts
// the no-lost-ops and convergence envelopes, and (for chaos runs) the p99
// recovery envelope against the per-second timeline.
func checkEnvelopes(cfg *config, clients []*client, m *metrics, ch *chaos) envelope {
	env := envelope{RecoveredWithin: -1}

	groups := make(map[string][]*client)
	for _, c := range clients {
		groups[c.doc] = append(groups[c.doc], c)
	}

	// Quiesce: every replica of every document has applied exactly the
	// ops every sibling broadcast. This is simultaneously the no-lost-ops
	// check — clock.Get(site) below the sender's broadcast count means an
	// operation never arrived, and equality for every (replica, site)
	// pair means anti-entropy repaired everything the fault dropped.
	deadline := time.Now().Add(cfg.quiesceTimeout)
	quiesceStart := time.Now()
	var lastMismatches []string
	for {
		lastMismatches = lastMismatches[:0]
		for doc, group := range groups {
			for _, c := range group {
				vc := c.eng.Clock()
				if vc == nil {
					lastMismatches = append(lastMismatches, fmt.Sprintf("doc %s: client %d engine stopped early", doc, c.id))
					continue
				}
				for _, sib := range group {
					want := sib.sent.Load()
					if got := vc.Get(sib.site); got != want {
						lastMismatches = append(lastMismatches,
							fmt.Sprintf("doc %s: client %d sees %d/%d ops from site %d", doc, c.id, got, want, sib.site))
					}
				}
			}
		}
		if len(lastMismatches) == 0 {
			env.NoLostOps = true
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(500 * time.Millisecond)
	}
	env.QuiesceSeconds = time.Since(quiesceStart).Seconds()
	if !env.NoLostOps {
		sort.Strings(lastMismatches)
		if len(lastMismatches) > 10 {
			lastMismatches = append(lastMismatches[:10],
				fmt.Sprintf("... and %d more", len(lastMismatches)-10))
		}
		env.Details = append(env.Details,
			fmt.Sprintf("ops still missing after %v quiesce:", cfg.quiesceTimeout))
		env.Details = append(env.Details, lastMismatches...)
	}

	// Convergence: identical content across each document's replicas.
	// Compared by hash so 2,000 full documents are not held at once.
	env.Converged = true
	for doc, group := range groups {
		var ref uint64
		for i, c := range group {
			h := fnv.New64a()
			h.Write([]byte(c.replica.ContentString()))
			sum := h.Sum64()
			if i == 0 {
				ref = sum
			} else if sum != ref {
				env.Converged = false
				env.Details = append(env.Details,
					fmt.Sprintf("doc %s: client %d content diverges from client %d (len %d vs %d)",
						doc, c.id, group[0].id, c.replica.Len(), group[0].replica.Len()))
				break
			}
		}
	}

	// p99 recovery: after heal, a per-second window's p99 must drop back
	// under the recovery threshold (3x the pre-chaos baseline, floored at
	// 250ms) before the write window ends and within -recover-within.
	if cfg.scenario != "steady" && !ch.healedAt.IsZero() {
		base := m.timeline
		healIdx := base.WindowAt(ch.healedAt)
		chaosIdx := base.WindowAt(ch.injectedAt)
		endIdx := base.WindowAt(base.Start().Add(cfg.duration))

		baseline := baselineP99(m, chaosIdx)
		threshold := 3 * baseline
		if threshold < 250*time.Millisecond {
			threshold = 250 * time.Millisecond
		}
		env.RecoveryP99Max = threshold
		for i := healIdx; i <= endIdx && i < base.Len(); i++ {
			w := base.Window(i)
			if w.Count() < 20 {
				continue // too few samples to call a p99
			}
			if w.Quantile(0.99) <= threshold {
				recoveredAt := base.Start().Add(time.Duration(i+1) * base.Width())
				env.RecoveredWithin = recoveredAt.Sub(ch.healedAt)
				if env.RecoveredWithin < 0 {
					env.RecoveredWithin = 0
				}
				break
			}
		}
		if env.RecoveredWithin < 0 {
			env.Details = append(env.Details,
				fmt.Sprintf("p99 never returned under %v between heal and the end of the write window", threshold))
		} else if env.RecoveredWithin > cfg.recoverWithin {
			env.Details = append(env.Details,
				fmt.Sprintf("p99 recovered in %v, over the -recover-within budget of %v", env.RecoveredWithin, cfg.recoverWithin))
		}
	}
	return env
}

// baselineP99 merges the whole windows that finished before the chaos
// injection and returns their pooled p99 — the "normal" the recovery
// threshold is relative to.
func baselineP99(m *metrics, chaosIdx int) time.Duration {
	merged := m.timeline.Window(0).Snapshot()
	for i := 1; i < chaosIdx; i++ {
		merged.Merge(m.timeline.Window(i))
	}
	if merged.Count() == 0 {
		return 0
	}
	return merged.Quantile(0.99)
}

// passed reduces the envelope to the scenario's verdict: chaos runs need
// all three checks, steady runs need convergence (and the SLO, asserted
// by the caller).
func (env *envelope) passed(cfg *config) bool {
	ok := env.NoLostOps && env.Converged
	if cfg.scenario != "steady" {
		ok = ok && env.RecoveredWithin >= 0 && env.RecoveredWithin <= cfg.recoverWithin
	}
	return ok
}

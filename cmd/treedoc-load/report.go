package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"github.com/treedoc/treedoc/internal/loadstats"
	"github.com/treedoc/treedoc/internal/transport"
)

// Report is the load-report.json schema (documented in
// docs/ARCHITECTURE.md §12). Durations serialise as int64 nanoseconds —
// machine-readable first; the human summary goes to the log.
type Report struct {
	Tool      string    `json:"tool"`
	StartedAt time.Time `json:"started_at"`
	Scenario  string    `json:"scenario"`

	Config ReportConfig `json:"config"`

	Sends        uint64  `json:"sends"`
	Deliveries   uint64  `json:"deliveries"`
	SendRate     float64 `json:"send_rate_per_sec"`
	DeliveryRate float64 `json:"delivery_rate_per_sec"`
	Reconnects   uint64  `json:"reconnects"`
	PoolSessions int     `json:"pool_sessions"`

	Latency  LatencySummary  `json:"latency"`
	Timeline []WindowSummary `json:"timeline"`
	PerDoc   []DocSummary    `json:"per_doc"`
	HubStats []HubSeries     `json:"hub_stats"`

	Chaos *ChaosSummary `json:"chaos,omitempty"`

	Failures []string `json:"failures,omitempty"`
	Passed   bool     `json:"passed"`
}

// ReportConfig echoes the run's knobs so a report is self-describing.
type ReportConfig struct {
	Hubs     int           `json:"hubs"`
	Sessions int           `json:"sessions"`
	Docs     int           `json:"docs"`
	Rate     float64       `json:"rate_per_client"`
	Duration time.Duration `json:"duration_ns"`
	Pool     int           `json:"pool"`
	Skew     float64       `json:"skew"`
	Seed     int64         `json:"seed"`
	Sync     time.Duration `json:"sync_ns"`
	Queue    int           `json:"queue"`
}

// LatencySummary is the end-of-run stamp→deliver distribution.
type LatencySummary struct {
	Count uint64        `json:"count"`
	Min   time.Duration `json:"min_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
	Max   time.Duration `json:"max_ns"`
}

func summarize(h *loadstats.Hist) LatencySummary {
	return LatencySummary{
		Count: h.Count(),
		Min:   h.Min(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}

// WindowSummary is one timeline second (empty windows are elided).
type WindowSummary struct {
	Second int           `json:"second"`
	Count  uint64        `json:"count"`
	P50    time.Duration `json:"p50_ns"`
	P99    time.Duration `json:"p99_ns"`
}

// DocSummary is one document's fan-out: how many clients shared it and
// how much traffic it carried.
type DocSummary struct {
	Doc        string `json:"doc"`
	Clients    int    `json:"clients"`
	Sends      uint64 `json:"sends"`
	Deliveries uint64 `json:"deliveries"`
	FinalAtoms int    `json:"final_atoms"`
}

// HubSeries is one hub's polled counter samples over the run.
type HubSeries struct {
	Hub     string      `json:"hub"`
	Samples []HubSample `json:"samples"`
}

// HubSample is one expvar poll (offset from run start). Gaps in a series
// are crash windows — the endpoint was down.
type HubSample struct {
	OffsetSec float64            `json:"offset_sec"`
	Stats     transport.HubStats `json:"stats"`
}

// ChaosSummary is the scenario verdict: event times plus the envelope.
type ChaosSummary struct {
	InjectedAtSec   float64       `json:"injected_at_sec"`
	HealedAtSec     float64       `json:"healed_at_sec"`
	NoLostOps       bool          `json:"no_lost_ops"`
	Converged       bool          `json:"converged"`
	QuiesceSeconds  float64       `json:"quiesce_seconds"`
	RecoveredWithin time.Duration `json:"recovered_within_ns"` // -1: never
	RecoveryP99Max  time.Duration `json:"recovery_p99_max_ns"`
	Details         []string      `json:"details,omitempty"`
}

func buildReport(cfg *config, clients []*client, m *metrics, series []HubSeries, env envelope, ch *chaos, started time.Time) *Report {
	rep := &Report{
		Tool:      "treedoc-load",
		StartedAt: started,
		Scenario:  cfg.scenario,
		Config: ReportConfig{
			Hubs: cfg.hubs, Sessions: cfg.sessions, Docs: cfg.docs,
			Rate: cfg.rate, Duration: cfg.duration, Pool: cfg.pool,
			Skew: cfg.skew, Seed: cfg.seed, Sync: cfg.sync, Queue: cfg.queue,
		},
		Sends:      m.sends.Load(),
		Deliveries: m.deliveries.Load(),
		Reconnects: sumReconnects(clients),
		Latency:    summarize(m.hist),
		HubStats:   series,
	}
	secs := cfg.duration.Seconds()
	rep.SendRate = float64(rep.Sends) / secs
	rep.DeliveryRate = float64(rep.Deliveries) / secs

	for i := 0; i < m.timeline.Len(); i++ {
		w := m.timeline.Window(i)
		if w.Count() == 0 {
			continue
		}
		rep.Timeline = append(rep.Timeline, WindowSummary{
			Second: i, Count: w.Count(), P50: w.Quantile(0.5), P99: w.Quantile(0.99),
		})
	}

	byDoc := make(map[string]*DocSummary)
	for _, c := range clients {
		d := byDoc[c.doc]
		if d == nil {
			d = &DocSummary{Doc: c.doc, FinalAtoms: c.replica.Len()}
			byDoc[c.doc] = d
		}
		d.Clients++
		d.Sends += c.sent.Load()
	}
	m.mu.Lock()
	for doc, ctr := range m.perDoc {
		if d := byDoc[doc]; d != nil {
			d.Deliveries = ctr.Load()
		}
	}
	m.mu.Unlock()
	for _, d := range byDoc {
		rep.PerDoc = append(rep.PerDoc, *d)
	}
	sort.Slice(rep.PerDoc, func(i, j int) bool { return rep.PerDoc[i].Deliveries > rep.PerDoc[j].Deliveries })

	if cfg.scenario != "steady" {
		cs := &ChaosSummary{
			NoLostOps:       env.NoLostOps,
			Converged:       env.Converged,
			QuiesceSeconds:  env.QuiesceSeconds,
			RecoveredWithin: env.RecoveredWithin,
			RecoveryP99Max:  env.RecoveryP99Max,
			Details:         env.Details,
		}
		if !ch.injectedAt.IsZero() {
			cs.InjectedAtSec = ch.injectedAt.Sub(started).Seconds()
		}
		if !ch.healedAt.IsZero() {
			cs.HealedAtSec = ch.healedAt.Sub(started).Seconds()
		}
		rep.Chaos = cs
	} else {
		if !env.NoLostOps {
			rep.Failures = append(rep.Failures, "steady: ops lost (see log)")
		}
		if !env.Converged {
			rep.Failures = append(rep.Failures, "steady: replicas diverged")
		}
	}

	if !env.passed(cfg) {
		rep.Failures = append(rep.Failures, fmt.Sprintf("%s envelope failed", cfg.scenario))
		rep.Failures = append(rep.Failures, env.Details...)
	}
	if cfg.sloP99 > 0 && rep.Latency.P99 > cfg.sloP99 {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("p99 %v over the -slo-p99 budget %v", rep.Latency.P99, cfg.sloP99))
	}
	rep.Passed = len(rep.Failures) == 0
	return rep
}

func sumReconnects(clients []*client) uint64 {
	var n uint64
	for _, c := range clients {
		n += c.reconnects.Load()
	}
	return n
}

func writeReport(path string, rep *Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("treedoc-load: encode report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("treedoc-load: write report: %w", err)
	}
	return nil
}

func printSummary(rep *Report) {
	log.Printf("%s: %d sends, %d deliveries (%.0f/s) across %d docs",
		rep.Scenario, rep.Sends, rep.Deliveries, rep.DeliveryRate, len(rep.PerDoc))
	l := rep.Latency
	log.Printf("stamp→deliver: p50 %v  p90 %v  p99 %v  p99.9 %v  max %v  (n=%d)",
		l.P50, l.P90, l.P99, l.P999, l.Max, l.Count)
	if rep.Chaos != nil {
		c := rep.Chaos
		rec := "never"
		if c.RecoveredWithin >= 0 {
			rec = c.RecoveredWithin.String()
		}
		log.Printf("chaos %s: inject %.0fs heal %.0fs — no-lost-ops=%v converged=%v (quiesce %.1fs) p99-recovery=%s",
			rep.Scenario, c.InjectedAtSec, c.HealedAtSec, c.NoLostOps, c.Converged, c.QuiesceSeconds, rec)
	}
	if rep.Passed {
		log.Printf("PASS")
	} else {
		for _, f := range rep.Failures {
			log.Printf("FAIL: %s", f)
		}
	}
}

package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/treedoc/treedoc/internal/simnet"
	"github.com/treedoc/treedoc/internal/transport"
)

// hubProc is one fleet member: a re-exec'd child process listening on a
// pre-picked loopback port, fronted by a chaos proxy in this process. The
// proxy's address is the hub's advertised ring identity, so every client
// dial and every hub-to-hub mesh connection traverses the proxy — which
// is what lets Partition and SetLatency isolate the hub from both planes
// without the hub's cooperation.
type hubProc struct {
	idx   int
	addr  string // real listen address (stable across restarts)
	adv   string // advertised = proxy address
	proxy *simnet.Proxy

	mu    sync.Mutex
	cmd   *exec.Cmd // guarded by mu: replaced on restart
	stats string    // guarded by mu: expvar endpoint, changes on restart
}

// fleet manages the hub processes and their proxies.
type fleet struct {
	cfg     *config
	hubs    []*hubProc
	joiner  *hubProc // set by the reshard scenario
	verbose bool
}

// pickPort reserves a loopback port by binding and immediately releasing
// it. The tiny reuse race is acceptable in a harness and buys a stable
// hub address known before the child exists — which the proxy (and every
// peer's ring config) needs up front.
func pickPort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("treedoc-load: reserve port: %w", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// startFleet brings up cfg.hubs hubs behind proxies, all sharing one
// static ring at epoch 1 (advertised = proxy addresses).
func startFleet(cfg *config) (*fleet, error) {
	f := &fleet{cfg: cfg, verbose: cfg.verbose}
	for i := 0; i < cfg.hubs; i++ {
		addr, err := pickPort()
		if err != nil {
			return nil, err
		}
		proxy, err := simnet.NewProxy(addr)
		if err != nil {
			return nil, err
		}
		f.hubs = append(f.hubs, &hubProc{idx: i, addr: addr, adv: proxy.Addr(), proxy: proxy})
	}
	ring := make([]string, len(f.hubs))
	for i, h := range f.hubs {
		ring[i] = h.adv
	}
	peers := ""
	if len(ring) > 1 {
		peers = strings.Join(ring, ",")
	}
	for _, h := range f.hubs {
		if err := f.spawn(h, peers, ""); err != nil {
			f.stop()
			return nil, err
		}
	}
	return f, nil
}

// spawn starts (or restarts) a hub child and waits for its READY line.
func (f *fleet) spawn(h *hubProc, peers, join string) error {
	args := []string{
		"-hub-child",
		"-hub-addr", h.addr,
		"-hub-self", h.adv,
		"-hub-queue", fmt.Sprint(f.cfg.queue),
	}
	if peers != "" {
		args = append(args, "-hub-peers", peers)
	}
	if join != "" {
		args = append(args, "-hub-join", join)
	}
	if f.verbose {
		args = append(args, "-hub-v")
	}
	cmd := exec.Command(os.Args[0], args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return fmt.Errorf("treedoc-load: hub %d stdout: %w", h.idx, err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("treedoc-load: hub %d start: %w", h.idx, err)
	}

	ready := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "READY "); ok {
				select {
				case ready <- rest:
				default:
				}
				continue
			}
			if f.verbose {
				log.Printf("hub %d: %s", h.idx, line)
			}
		}
	}()

	select {
	case rest := <-ready:
		stats := ""
		for _, field := range strings.Fields(rest) {
			if v, ok := strings.CutPrefix(field, "stats="); ok {
				stats = v
			}
		}
		if stats == "" {
			cmd.Process.Kill()
			return fmt.Errorf("treedoc-load: hub %d READY line missing stats address: %q", h.idx, rest)
		}
		h.mu.Lock()
		h.cmd = cmd
		h.stats = stats
		h.mu.Unlock()
		if f.verbose {
			log.Printf("hub %d up: relay %s (via proxy %s), stats http://%s/debug/vars", h.idx, h.addr, h.adv, stats)
		}
		return nil
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		return fmt.Errorf("treedoc-load: hub %d did not report READY within 20s", h.idx)
	}
}

// addJoiner spawns one extra hub that joins the live ring via the first
// hub's advertised address (the reshard scenario's join leg).
func (f *fleet) addJoiner() (*hubProc, error) {
	addr, err := pickPort()
	if err != nil {
		return nil, err
	}
	proxy, err := simnet.NewProxy(addr)
	if err != nil {
		return nil, err
	}
	h := &hubProc{idx: len(f.hubs), addr: addr, adv: proxy.Addr(), proxy: proxy}
	if err := f.spawn(h, "", f.hubs[0].adv); err != nil {
		proxy.Close()
		return nil, err
	}
	f.joiner = h
	return h, nil
}

// leave SIGTERMs a hub and waits for it to resign and exit (the reshard
// scenario's leave leg: owned documents hand off before the process
// dies).
func (f *fleet) leave(h *hubProc, timeout time.Duration) error {
	h.mu.Lock()
	cmd := h.cmd
	h.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("treedoc-load: hub %d not running", h.idx)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("treedoc-load: hub %d SIGTERM: %w", h.idx, err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		cmd.Process.Kill()
		return fmt.Errorf("treedoc-load: hub %d did not exit within %v of SIGTERM", h.idx, timeout)
	}
}

// crash SIGKILLs a hub — no resign, no handoff, queued frames lost. The
// proxy stays up so the advertised address remains dialable-and-failing,
// exactly like a crashed server behind a stable VIP.
func (f *fleet) crash(h *hubProc) error {
	h.mu.Lock()
	cmd := h.cmd
	h.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("treedoc-load: hub %d not running", h.idx)
	}
	if err := cmd.Process.Kill(); err != nil {
		return fmt.Errorf("treedoc-load: hub %d kill: %w", h.idx, err)
	}
	cmd.Wait()
	return nil
}

// restart re-spawns a crashed hub on its original address with the
// original static ring.
func (f *fleet) restart(h *hubProc) error {
	ring := make([]string, len(f.hubs))
	for i, hp := range f.hubs {
		ring[i] = hp.adv
	}
	peers := ""
	if len(ring) > 1 {
		peers = strings.Join(ring, ",")
	}
	return f.spawn(h, peers, "")
}

// stop tears the whole fleet down: children killed, proxies closed.
func (f *fleet) stop() {
	all := f.hubs
	if f.joiner != nil {
		all = append(append([]*hubProc{}, f.hubs...), f.joiner)
	}
	for _, h := range all {
		h.mu.Lock()
		cmd := h.cmd
		h.mu.Unlock()
		if cmd != nil && cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
		h.proxy.Close()
	}
}

// advertised returns the fleet's client-facing (proxy) addresses.
func (f *fleet) advertised() []string {
	out := make([]string, len(f.hubs))
	for i, h := range f.hubs {
		out[i] = h.adv
	}
	return out
}

// pollStats fetches one hub's expvar endpoint and extracts the
// treedoc.hub variable. A hub that is down (crash window) returns an
// error; callers treat that as a gap, not a failure.
func (h *hubProc) pollStats() (transport.HubStats, error) {
	h.mu.Lock()
	statsAddr := h.stats
	h.mu.Unlock()
	var hs transport.HubStats
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + statsAddr + "/debug/vars")
	if err != nil {
		return hs, fmt.Errorf("treedoc-load: hub %d stats: %w", h.idx, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return hs, fmt.Errorf("treedoc-load: hub %d stats read: %w", h.idx, err)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		return hs, fmt.Errorf("treedoc-load: hub %d stats decode: %w", h.idx, err)
	}
	raw, ok := vars["treedoc.hub"]
	if !ok {
		return hs, fmt.Errorf("treedoc-load: hub %d stats missing treedoc.hub", h.idx)
	}
	if err := json.Unmarshal(raw, &hs); err != nil {
		return hs, fmt.Errorf("treedoc-load: hub %d stats decode: %w", h.idx, err)
	}
	return hs, nil
}

package main

import (
	"expvar"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/treedoc/treedoc/internal/transport"
	"github.com/treedoc/treedoc/internal/transport/shardmap"
)

// hubChildConfig carries the hidden -hub-* flags of a fleet hub process.
type hubChildConfig struct {
	addr    string
	self    string
	peers   string
	join    string
	queue   int
	verbose bool
}

// hubChildMain is the re-exec entry point: a minimal treedoc-serve — hub
// relay, optional shard ring, expvar stats endpoint — without archivists
// (the harness's replicas are the clients themselves, and ring-only
// handoffs heal through client anti-entropy). It prints one READY line on
// stdout once the relay and stats listeners are live; the parent parses
// it. SIGTERM resigns from the ring (handing owned documents off) before
// exiting, which is how the reshard scenario's "leave" leg works; the
// crash scenario uses SIGKILL precisely so none of this cleanup runs.
func hubChildMain(cfg hubChildConfig) {
	log.SetPrefix(fmt.Sprintf("hub[%s]: ", cfg.self))

	var opts []transport.HubOption
	opts = append(opts, transport.WithHubQueueDepth(cfg.queue))
	if cfg.verbose {
		opts = append(opts, transport.WithHubLogger(log.Printf))
	}
	if cfg.peers != "" {
		opts = append(opts, transport.WithHubShards(cfg.self, strings.Split(cfg.peers, ",")))
	} else if cfg.self != "" {
		opts = append(opts, transport.WithHubSelf(cfg.self))
	}

	hub, err := transport.ListenHub(cfg.addr, opts...)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}

	expvar.Publish("treedoc.hub", expvar.Func(func() any { return hub.Stats() }))
	sln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("stats listener: %v", err)
	}
	go func() {
		mux := http.NewServeMux()
		mux.Handle("/debug/vars", expvar.Handler())
		srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		srv.Serve(sln)
	}()

	if cfg.join != "" {
		if err := joinRing(hub, cfg.self, cfg.join); err != nil {
			log.Fatalf("join: %v", err)
		}
	}

	// The parent blocks on this line; everything above must be live first.
	fmt.Printf("READY addr=%s stats=%s\n", hub.Addr(), sln.Addr())
	os.Stdout.Sync()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	<-sig
	if hub.RingEpoch() > 0 {
		if err := hub.Resign(30 * time.Second); err != nil {
			log.Printf("resign: %v (survivors heal via anti-entropy)", err)
		}
	}
	hub.Close()
}

// joinRing is treedoc-serve's verify-and-remint join loop in miniature:
// fetch the ring from a live member, mint the next epoch with this hub
// added, announce, and retry while concurrent membership changes keep
// winning the epoch race.
func joinRing(hub *transport.Hub, self, via string) error {
	for attempt := 0; attempt < 5; attempt++ {
		cur, err := transport.QueryRing(via, 5*time.Second)
		if err != nil {
			return fmt.Errorf("ring query to %s: %w", via, err)
		}
		nodes, epoch := cur.Nodes, cur.Epoch
		if installed := hub.Ring(); installed != nil && installed.Epoch > epoch {
			nodes, epoch = installed.Nodes, installed.Epoch
		}
		present := false
		for _, n := range nodes {
			if n == self {
				present = true
				break
			}
		}
		if !present {
			nodes = append(append([]string{}, nodes...), self)
		}
		ring, err := shardmap.NewRing(epoch+1, nodes)
		if err != nil {
			return fmt.Errorf("joined ring invalid: %w", err)
		}
		if err := hub.ConfigureRing(self, ring); err != nil {
			log.Printf("join attempt %d: %v (retrying)", attempt+1, err)
			continue
		}
		if installed := hub.Ring(); installed != nil && installed.Has(self) {
			log.Printf("joined ring at epoch %d (%d nodes)", installed.Epoch, len(installed.Nodes))
			return nil
		}
	}
	return fmt.Errorf("could not join the ring via %s (concurrent membership changes kept winning)", via)
}

// Package treedoc implements Treedoc, the Commutative Replicated Data Type
// (CRDT) for cooperative text editing from Preguiça, Marquès, Shapiro and
// Leția, "A commutative replicated data type for cooperative editing",
// ICDCS 2009.
//
// A Treedoc document is a replicated sequence of atoms (characters, lines
// or paragraphs). Each replica edits locally with no latency and no locks;
// edits become operations that are broadcast and replayed at other
// replicas. Because every pair of concurrent operations commutes, replicas
// that deliver operations in happened-before order converge automatically,
// with no operational transformation and no serialisation.
//
// # Quick start
//
//	alice, _ := treedoc.New(treedoc.WithSite(1))
//	bob, _ := treedoc.New(treedoc.WithSite(2))
//
//	op1, _ := alice.InsertAt(0, "hello")
//	op2, _ := alice.InsertAt(1, "world")
//	_ = bob.Apply(op1) // replay in happened-before order
//	_ = bob.Apply(op2)
//	fmt.Println(bob.ContentString()) // hello\nworld
//
// # Position identifiers
//
// Atoms are identified by paths in an extended binary tree (major nodes
// containing disambiguated mini-nodes). The identifier space is dense —
// between any two identifiers there is always room for a third — so an
// insert never displaces its neighbours. Two disambiguator schemes are
// provided (Section 3.3 of the paper): SDIS (bare site identifiers, deleted
// atoms leave tombstones) and UDIS (counter+site pairs, deleted atoms are
// discarded immediately).
//
// Allocation is balanced by default (Section 4.1): appends grow the tree by
// ⌈log2 h⌉+1 levels at once and subsequent inserts fill the reserved slots,
// avoiding the one-level-per-append degeneration of the naive algorithm.
//
// # Structural compaction
//
// Flatten (Section 4.2) rewrites a quiescent region as a plain atom array
// with zero metadata; in the best case a compacted document is just a
// sequential buffer. Within one process, Doc.Flatten and Doc.EndRevision
// (heuristic flatten of cold subtrees) are available directly; across
// replicas, flatten must be coordinated — Cluster runs the paper's
// commitment protocol (two-phase commit where any replica that observed a
// concurrent edit in the region votes No).
//
// # Simulation
//
// Cluster wires several replicas over a deterministic discrete-event
// network with random latency, partitions and healing, plus causal
// delivery. It is how the repository's examples, integration tests and
// benchmarks exercise distributed behaviour; real deployments substitute
// their own transport and should preserve the causal-delivery contract.
package treedoc

// Package treedoc implements Treedoc, the Commutative Replicated Data Type
// (CRDT) for cooperative text editing from Preguiça, Marquès, Shapiro and
// Leția, "A commutative replicated data type for cooperative editing",
// ICDCS 2009.
//
// A Treedoc document is a replicated sequence of atoms (characters, lines
// or paragraphs). Each replica edits locally with no latency and no locks;
// edits become operations that are broadcast and replayed at other
// replicas. Because every pair of concurrent operations commutes, replicas
// that deliver operations in happened-before order converge automatically,
// with no operational transformation and no serialisation.
//
// # Quick start
//
//	alice, _ := treedoc.New(treedoc.WithSite(1))
//	bob, _ := treedoc.New(treedoc.WithSite(2))
//
//	op1, _ := alice.InsertAt(0, "hello")
//	op2, _ := alice.InsertAt(1, "world")
//	_ = bob.Apply(op1) // replay in happened-before order
//	_ = bob.Apply(op2)
//	fmt.Println(bob.ContentString()) // hello\nworld
//
// # Position identifiers
//
// Atoms are identified by paths in an extended binary tree (major nodes
// containing disambiguated mini-nodes). The identifier space is dense —
// between any two identifiers there is always room for a third — so an
// insert never displaces its neighbours. Two disambiguator schemes are
// provided (Section 3.3 of the paper): SDIS (bare site identifiers, deleted
// atoms leave tombstones) and UDIS (counter+site pairs, deleted atoms are
// discarded immediately).
//
// Allocation is balanced by default (Section 4.1): appends grow the tree by
// ⌈log2 h⌉+1 levels at once and subsequent inserts fill the reserved slots,
// avoiding the one-level-per-append degeneration of the naive algorithm.
//
// # Structural compaction
//
// Flatten (Section 4.2) rewrites a quiescent region as a plain atom array
// with zero metadata; in the best case a compacted document is just a
// sequential buffer. Within one process, Doc.Flatten and Doc.EndRevision
// (heuristic flatten of cold subtrees) are available directly; across
// replicas, flatten must be coordinated — two-phase commit where any
// replica that observed a concurrent edit in the region votes No. Both
// distribution layers run that protocol: Cluster on the simulator, and
// Engine.ProposeFlatten / Engine.ProposeFlattenCold over live links,
// where a committed flatten is broadcast as an operation in the causal
// stream (so it orders before every post-flatten edit at every replica)
// and becomes the snapshot barrier that bounds the durable log. While a
// replica's Yes vote is outstanding, local edits in the region fail with
// ErrRegionLocked and succeed again once the round decides.
//
// # Distribution: simulated and real
//
// Two transports share the causal-delivery contract at different layers of
// realism:
//
// Cluster wires several replicas over a deterministic discrete-event
// network (internal/simnet) with random latency, partitions and healing.
// Everything runs in one goroutine with virtual time, so protocol
// behaviour — convergence, the flatten commitment protocol, chaos
// schedules — is exactly reproducible from a seed. It is how integration
// tests and benchmarks exercise distributed behaviour.
//
// Engine (internal/transport) is the real concurrent replication engine:
// it carries the same operations between live replicas over goroutines and
// sockets. Each Engine wraps a Doc or TextBuffer behind an actor loop,
// stamps and batches local edits to peers, applies remote operations in
// causal order, runs a periodic anti-entropy exchange that repairs losses
// from full queues, slow consumers or late joiners, and coordinates
// flatten through the same commitment protocol the simulator runs. Links
// are in-process channel pairs (NewChanPair) or length-prefixed TCP
// framing (Dial; DialDoc names a document, and a Session from DialSession
// multiplexes several documents' links over one connection — see
// ExampleDialSession), typically relayed by the cmd/treedoc-serve hub
// (whose archivist can double as a flatten janitor with -flatten-every).
// Convergence under genuine parallelism is exercised by the race and soak
// tests in internal/transport; docs/ARCHITECTURE.md specifies the wire
// and on-disk formats.
//
// # Durability and snapshot catch-up
//
// WithLogDir gives an Engine a durable operation log (internal/oplog): an
// append-only, CRC-checked segment store that every stamped and delivered
// operation is written to, and that NewEngine replays on start. What
// survives a crash: the stored snapshot plus every log record synced
// before the crash — a torn tail record (a crash mid-append) is detected
// by its checksum and truncated on reopen. Under the default FsyncBatch
// policy the log is synced once per flushed batch, before frames fan out,
// so no peer can ever have seen a stamp the log could forget; a restarted
// replica therefore resumes its sequence exactly and re-stamps nothing.
//
// The log is bounded by compaction (WithCompactEvery): the engine
// periodically snapshots the replica — Doc.Snapshot captures state and an
// applied version vector atomically — and truncates, in memory and on
// disk, everything the snapshot covers. Truncation trails the newest
// barrier by a few anti-entropy rounds so live peers a moment behind are
// still served plain operations. A peer whose digest falls below the
// truncation floor (typically a late joiner) is missing operations that
// no longer exist as messages; it receives the barrier snapshot in a
// single frame plus the retained suffix, installs it if its version
// dominates local state (Doc.InstallSnapshot), and replays only the tail
// — never the full history. WithSnapshotThreshold serves snapshots to
// deeply-behind-but-servable peers too, trading one big frame for a long
// op replay.
//
// The layering is deliberate: algorithms are debugged on the simulator,
// where failures replay deterministically, and deployed on the transport,
// where the race detector and soak tests stand guard.
package treedoc

// Collab: two independent documents edited cooperatively over one relay
// hub — the deployment shape of the paper's peer-to-peer scenario, not a
// simulation. An in-process hub (the same code as cmd/treedoc-serve)
// listens on TCP loopback; replicas attach to the document they edit with
// DialDoc, the hub relays each document only within its own group, and
// the engines synchronise in the background: "common edit operations
// execute optimistically, with no latency; replicas synchronise only in
// the background" (Section 6).
//
// Two writers edit "design" and two edit "notes", all four concurrently
// through the same hub process — the sharded relay keeps the documents
// fully isolated (the final buffers prove it: no marker from one document
// ever appears in the other). A fifth replica then joins "design" late,
// after thousands of edits. Each engine runs the compaction policy —
// snapshot the document, truncate the operation log below it — so nobody
// retains the full history; the joiner's digest falls below the
// compaction barrier and it catches up from a snapshot frame plus the
// retained log suffix, replaying only the tail instead of the whole edit
// history.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"sync"
	"time"

	"github.com/treedoc/treedoc"
)

const (
	writersPerDoc = 2
	editsPerSite  = 300
	// compactEvery keeps every engine's retained op log below ~256
	// messages: with 600+ edits per document, the late joiner is
	// guaranteed to be below everyone's compaction barrier and must catch
	// up via snapshot.
	compactEvery  = 256
	snapThreshold = 128
)

type site struct {
	id  treedoc.SiteID
	doc string
	buf *treedoc.TextBuffer
	eng *treedoc.Engine
}

func main() {
	hub, err := treedoc.ListenHub("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer hub.Close()
	fmt.Printf("hub relaying on %s\n", hub.Addr())

	dial := func(id treedoc.SiteID, doc string) *site {
		buf, err := treedoc.NewTextBuffer(treedoc.WithSite(id))
		if err != nil {
			log.Fatal(err)
		}
		eng, err := treedoc.NewEngine(id, buf,
			treedoc.WithSyncInterval(25*time.Millisecond),
			treedoc.WithCompactEvery(compactEvery),
			treedoc.WithSnapshotThreshold(snapThreshold))
		if err != nil {
			log.Fatal(err)
		}
		link, err := treedoc.DialDoc(hub.Addr().String(), doc)
		if err != nil {
			log.Fatal(err)
		}
		eng.Connect(link)
		return &site{id: id, doc: doc, buf: buf, eng: eng}
	}

	design := []*site{dial(1, "design"), dial(2, "design")}
	notes := []*site{dial(3, "notes"), dial(4, "notes")}
	all := append(append([]*site{}, design...), notes...)

	// Each document gets its own seed outline from its first writer.
	seedLines := map[string][]string{
		"design": {"# Design notes\n", "## Goals\n", "## Open questions\n"},
		"notes":  {"# Meeting notes\n", "## 2026-07-30\n"},
	}
	for _, s := range []*site{design[0], notes[0]} {
		for _, line := range seedLines[s.doc] {
			ops, err := s.buf.Append(line)
			if err != nil {
				log.Fatal(err)
			}
			if err := s.eng.Broadcast(ops...); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Everyone edits concurrently, one writer goroutine per replica: random
	// inserts with occasional deletes, no coordination, no waiting. Inserts
	// carry a per-document marker so cross-document leakage would be
	// visible in the final text.
	var wg sync.WaitGroup
	for _, s := range all {
		wg.Add(1)
		go func(s *site) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(s.id)))
			for i := 0; i < editsPerSite; i++ {
				n := s.buf.Len()
				var ops []treedoc.Op
				var err error
				if n > 0 && rng.Intn(5) == 0 {
					ops, err = s.buf.Delete(rng.Intn(n), 1)
				} else {
					text := fmt.Sprintf("%s-s%d-%d ", s.doc, s.id, i)
					ops, err = s.buf.Insert(rng.Intn(n+1), text)
				}
				if errors.Is(err, treedoc.ErrOutOfRange) {
					// A remote delete shrank the buffer since Len; retry
					// with fresh offsets, as a live editor would.
					i--
					continue
				}
				if err != nil {
					log.Fatal(err)
				}
				if err := s.eng.Broadcast(ops...); err != nil {
					log.Fatal(err)
				}
			}
		}(s)
	}
	wg.Wait()
	fmt.Printf("%d sites broadcast %d edits each across 2 documents, synchronising in the background\n",
		len(all), editsPerSite)

	// Let the session settle: engines drain their backlogs, snapshot, and
	// promote their truncation floors — after which nobody retains the
	// full op history any more.
	if !converge(design, 30*time.Second) || !converge(notes, 30*time.Second) {
		log.Fatal("BUG: writers did not converge")
	}
	time.Sleep(1 * time.Second)

	// A latecomer joins "design" long after the burst. Its empty digest is
	// below every truncation floor in that document's group, so the
	// missing ops no longer exist as messages anywhere: catch-up arrives
	// as one snapshot frame plus the retained suffix, not a full history
	// replay.
	late := dial(5, "design")
	design = append(design, late)

	if !converge(design, 30*time.Second) {
		log.Fatal("BUG: replicas did not converge")
	}
	for _, group := range [][]*site{design, notes} {
		want := group[0].buf.String()
		for _, s := range group {
			if s.buf.String() != want {
				log.Fatalf("BUG: site %d diverged on doc %q", s.id, s.doc)
			}
			if err := s.buf.Doc().Check(); err != nil {
				log.Fatal(err)
			}
		}
	}
	// Doc isolation: no notes marker in design and vice versa.
	if strings.Contains(design[0].buf.String(), "notes-s") {
		log.Fatal("BUG: notes content leaked into design")
	}
	if strings.Contains(notes[0].buf.String(), "design-s") {
		log.Fatal("BUG: design content leaked into notes")
	}
	fmt.Printf("converged: design=%d runes across %d sites, notes=%d runes across %d sites, zero cross-doc leakage\n",
		design[0].buf.Len(), len(design), notes[0].buf.Len(), len(notes))
	fmt.Printf("late joiner on design: %d snapshots installed, %d tail ops replayed (history: %d+ ops)\n",
		late.eng.SnapshotsInstalled(), late.eng.Applied(), writersPerDoc*editsPerSite+3)
	if late.eng.SnapshotsInstalled() == 0 {
		log.Fatal("BUG: late joiner converged without snapshot catch-up")
	}

	for _, s := range append(design, notes...) {
		s.eng.Stop()
	}
	for doc, st := range hub.DocStats() {
		fmt.Printf("hub doc %q: %d relayed, %d dropped (healed by anti-entropy)\n", doc, st.Relays, st.Drops)
	}
	st := design[0].buf.Stats()
	fmt.Printf("design replica stats: %d atoms, avg PosID %.1f bits, %d tree nodes\n",
		st.Tree.LiveAtoms, st.Tree.AvgIDBits(), st.Tree.Nodes)
}

// converge polls until every engine's delivered clock in the group is
// identical (all broadcast operations applied everywhere) or the deadline
// passes.
func converge(sites []*site, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		clocks := make([]string, len(sites))
		for i, s := range sites {
			clocks[i] = s.eng.Clock().String()
		}
		same := true
		for _, c := range clocks[1:] {
			if c != clocks[0] {
				same = false
				break
			}
		}
		if same {
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	return false
}

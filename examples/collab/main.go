// Collab: a four-site cooperative editing session over the real concurrent
// transport — the deployment shape of the paper's peer-to-peer scenario,
// not a simulation. An in-process relay hub (the same code as
// cmd/treedoc-serve) listens on TCP loopback; four replicas dial it, edit
// concurrently from their own goroutines with zero latency, and the
// engines synchronise in the background: "common edit operations execute
// optimistically, with no latency; replicas synchronise only in the
// background" (Section 6).
//
// A fifth replica joins late, after thousands of edits. Each engine runs
// the compaction policy — snapshot the document, truncate the operation
// log below it — so nobody retains the full history; the joiner's digest
// falls below the compaction barrier and it catches up from a snapshot
// frame plus the retained log suffix, replaying only the tail instead of
// the whole edit history.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"github.com/treedoc/treedoc"
)

const (
	writers      = 4
	editsPerSite = 300
	// compactEvery keeps every engine's retained op log below ~256
	// messages: with 1200+ edits in the session, the late joiner is
	// guaranteed to be below everyone's compaction barrier and must catch
	// up via snapshot.
	compactEvery  = 256
	snapThreshold = 128
)

type site struct {
	id  treedoc.SiteID
	buf *treedoc.TextBuffer
	eng *treedoc.Engine
}

func main() {
	hub, err := treedoc.ListenHub("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer hub.Close()
	fmt.Printf("hub relaying on %s\n", hub.Addr())

	dial := func(id treedoc.SiteID) *site {
		buf, err := treedoc.NewTextBuffer(treedoc.WithSite(id))
		if err != nil {
			log.Fatal(err)
		}
		eng, err := treedoc.NewEngine(id, buf,
			treedoc.WithSyncInterval(25*time.Millisecond),
			treedoc.WithCompactEvery(compactEvery),
			treedoc.WithSnapshotThreshold(snapThreshold))
		if err != nil {
			log.Fatal(err)
		}
		link, err := treedoc.Dial(hub.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		eng.Connect(link)
		return &site{id: id, buf: buf, eng: eng}
	}

	sites := make([]*site, 0, writers)
	for id := treedoc.SiteID(1); id <= writers; id++ {
		sites = append(sites, dial(id))
	}

	// Site 1 seeds a shared outline; everyone else receives it over TCP.
	seed := sites[0]
	for _, line := range []string{"# Design notes\n", "## Goals\n", "## Open questions\n"} {
		ops, err := seed.buf.Append(line)
		if err != nil {
			log.Fatal(err)
		}
		if err := seed.eng.Broadcast(ops...); err != nil {
			log.Fatal(err)
		}
	}

	// Everyone edits concurrently, one writer goroutine per replica: random
	// inserts with occasional deletes, no coordination, no waiting.
	var wg sync.WaitGroup
	for _, s := range sites {
		wg.Add(1)
		go func(s *site) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(s.id)))
			for i := 0; i < editsPerSite; i++ {
				n := s.buf.Len()
				var ops []treedoc.Op
				var err error
				if n > 0 && rng.Intn(5) == 0 {
					ops, err = s.buf.Delete(rng.Intn(n), 1)
				} else {
					text := fmt.Sprintf("s%d-%d ", s.id, i)
					ops, err = s.buf.Insert(rng.Intn(n+1), text)
				}
				if errors.Is(err, treedoc.ErrOutOfRange) {
					// A remote delete shrank the buffer since Len; retry
					// with fresh offsets, as a live editor would.
					i--
					continue
				}
				if err != nil {
					log.Fatal(err)
				}
				if err := s.eng.Broadcast(ops...); err != nil {
					log.Fatal(err)
				}
			}
		}(s)
	}
	wg.Wait()
	fmt.Printf("%d sites broadcast %d edits each, synchronising in the background\n",
		writers, editsPerSite)

	// Let the session settle: engines drain their backlogs, snapshot, and
	// promote their truncation floors — after which nobody retains the
	// full op history any more.
	if !converge(sites, 30*time.Second) {
		log.Fatal("BUG: writers did not converge")
	}
	time.Sleep(1 * time.Second)

	// A latecomer joins long after the burst. Its empty digest is below
	// every truncation floor, so the missing ops no longer exist as
	// messages anywhere: catch-up arrives as one snapshot frame plus the
	// retained suffix, not a full history replay.
	late := dial(writers + 1)
	sites = append(sites, late)

	if !converge(sites, 30*time.Second) {
		log.Fatal("BUG: replicas did not converge")
	}
	want := sites[0].buf.String()
	for _, s := range sites {
		if s.buf.String() != want {
			log.Fatalf("BUG: site %d diverged", s.id)
		}
		if err := s.buf.Doc().Check(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("converged: %d sites, %d runes each (late joiner included)\n",
		len(sites), sites[0].buf.Len())
	totalOps := uint64(writers*editsPerSite) + 3
	fmt.Printf("late joiner: %d snapshots installed, %d tail ops replayed (history: %d+ ops)\n",
		late.eng.SnapshotsInstalled(), late.eng.Applied(), totalOps)
	if late.eng.SnapshotsInstalled() == 0 {
		log.Fatal("BUG: late joiner converged without snapshot catch-up")
	}

	var drops, snapsSent uint64
	for _, s := range sites {
		drops += s.eng.Drops()
		snapsSent += s.eng.SnapshotsSent()
		s.eng.Stop()
	}
	st := sites[0].buf.Stats()
	fmt.Printf("hub relayed %d frames (%d dropped and healed); engine drops %d; snapshots served %d\n",
		hub.Relays(), hub.Drops(), drops, snapsSent)
	fmt.Printf("replica stats: %d atoms, avg PosID %.1f bits, %d tree nodes\n",
		st.Tree.LiveAtoms, st.Tree.AvgIDBits(), st.Tree.Nodes)
}

// converge polls until every engine's delivered clock is identical (all
// broadcast operations applied everywhere) or the deadline passes.
func converge(sites []*site, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		clocks := make([]string, len(sites))
		for i, s := range sites {
			clocks[i] = s.eng.Clock().String()
		}
		same := true
		for _, c := range clocks[1:] {
			if c != clocks[0] {
				same = false
				break
			}
		}
		if same {
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	return false
}

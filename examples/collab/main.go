// Collab: a four-site cooperative editing session over a simulated network
// with random latency and a partition, the setting of the paper's
// peer-to-peer scenario. Disconnected sites keep editing ("to allow users
// to make contributions while disconnected") and everything converges after
// healing.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/treedoc/treedoc"
)

func main() {
	cluster, err := treedoc.NewCluster(4,
		treedoc.WithLatency(5, 60),
		treedoc.WithSeed(2009), // the paper's vintage; any seed reproduces
	)
	if err != nil {
		log.Fatal(err)
	}

	// Site 1 seeds a shared outline; the cluster replicates it.
	one := replica(cluster, 1)
	for i, s := range []string{"# Design notes", "## Goals", "## Non-goals", "## Open questions"} {
		must(one.InsertAt(i, s))
	}
	cluster.Run(0)
	fmt.Printf("seeded %d lines, replicated to %d sites\n\n", one.Len(), len(cluster.Sites()))

	// Everyone edits concurrently for a few rounds with messages in flight.
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 10; round++ {
		for _, site := range cluster.Sites() {
			r := replica(cluster, site)
			line := fmt.Sprintf("note from site %d, round %d", site, round)
			must(r.InsertAt(rng.Intn(r.Len()+1), line))
		}
		cluster.Run(rng.Intn(8)) // deliver a few messages mid-round
	}
	cluster.Run(0)
	fmt.Printf("after 10 concurrent rounds: converged=%v, %d lines\n\n",
		cluster.Converged(), one.Len())

	// Partition site 4 away; both sides keep editing.
	must(cluster.Partition(1, 4))
	must(cluster.Partition(2, 4))
	must(cluster.Partition(3, 4))
	four := replica(cluster, 4)
	for i := 0; i < 5; i++ {
		must(four.Append(fmt.Sprintf("offline edit %d from site 4", i)))
		must(one.Append(fmt.Sprintf("online edit %d from site 1", i)))
	}
	cluster.Run(0)
	fmt.Printf("during partition: converged=%v (expected false)\n", cluster.Converged())

	// Heal: the held operations flow, replicas converge automatically.
	cluster.HealAll()
	cluster.Run(0)
	fmt.Printf("after healing:    converged=%v, %d lines\n", cluster.Converged(), one.Len())

	if !cluster.Converged() {
		log.Fatal("BUG: cluster did not converge")
	}
	if err := cluster.Check(); err != nil {
		log.Fatal(err)
	}
	st := one.Stats()
	fmt.Printf("\nreplica stats: %d atoms, avg PosID %.1f bits, %d tree nodes\n",
		st.Tree.LiveAtoms, st.Tree.AvgIDBits(), st.Tree.Nodes)
}

func replica(c *treedoc.Cluster, site treedoc.SiteID) *treedoc.Replica {
	r, err := c.Replica(site)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

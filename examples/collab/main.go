// Collab: cooperative editing over a relay ring that reshards itself live
// — the deployment shape of the paper's peer-to-peer scenario with the
// serving tier as dynamic as the replicas. Two documents are edited
// through hub A (ring epoch 1, one node). Mid-burst, hub B joins the ring
// at epoch 2: the document the consistent-hash change relocates is frozen
// briefly, its archivist snapshot and retained log suffix are streamed to
// B over the hub-to-hub mesh, and the attached writers are re-pointed
// with an epoch-stamped redirect — no process restarts, no ops lost, and
// the writers never notice: "common edit operations execute
// optimistically, with no latency; replicas synchronise only in the
// background" (Section 6).
//
// The ownership hook mirrors cmd/treedoc-serve: when the handoff begins
// streaming into hub B, it starts a local archivist that installs the
// streamed snapshot and replays only the suffix — zero pre-snapshot ops.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/treedoc/treedoc"
	"github.com/treedoc/treedoc/internal/transport/shardmap"
)

const (
	editsPerPhase = 250
	archSiteA     = treedoc.SiteID(1000)
	archSiteB     = treedoc.SiteID(2000)
)

type site struct {
	id  treedoc.SiteID
	doc string
	buf *treedoc.TextBuffer
	eng *treedoc.Engine
}

// archivists is the minimal treedoc-serve-style ownership hook: start an
// archivist when a handoff streams in, stop it when one streams out.
type archivists struct {
	mu      sync.Mutex
	hub     *treedoc.Hub
	hubAddr string
	dir     string
	siteID  treedoc.SiteID
	m       map[string]*site
}

func (am *archivists) ownership(doc string, epoch uint64, acquired bool) {
	if acquired {
		fmt.Printf("hub %s acquired doc %q at ring epoch %d\n", am.hubAddr, doc, epoch)
		am.ensure(doc)
		return
	}
	fmt.Printf("hub %s released doc %q at ring epoch %d\n", am.hubAddr, doc, epoch)
	am.mu.Lock()
	a := am.m[doc]
	delete(am.m, doc)
	am.mu.Unlock()
	if a != nil {
		am.hub.RegisterHandoff(doc, nil)
		a.eng.Stop()
	}
}

func (am *archivists) ensure(doc string) *site {
	am.mu.Lock()
	defer am.mu.Unlock()
	if a := am.m[doc]; a != nil {
		return a
	}
	buf, err := treedoc.NewTextBuffer(treedoc.WithSite(am.siteID))
	if err != nil {
		log.Fatal(err)
	}
	eng, err := treedoc.NewEngine(am.siteID, buf,
		treedoc.WithLogDir(filepath.Join(am.dir, doc)),
		treedoc.WithSyncInterval(25*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	link, err := treedoc.DialDoc(am.hubAddr, doc)
	if err != nil {
		log.Fatal(err)
	}
	eng.Connect(link)
	a := &site{id: am.siteID, doc: doc, buf: buf, eng: eng}
	am.m[doc] = a
	am.hub.RegisterHandoff(doc, eng)
	return a
}

func (am *archivists) get(doc string) *site {
	am.mu.Lock()
	defer am.mu.Unlock()
	return am.m[doc]
}

func main() {
	tmp, err := os.MkdirTemp("", "collab-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	// Hub A starts alone at ring epoch 1.
	var amA *archivists
	hubA, err := treedoc.ListenHub("127.0.0.1:0",
		treedoc.WithHubOwnership(func(doc string, epoch uint64, acquired bool) {
			amA.ownership(doc, epoch, acquired)
		}))
	if err != nil {
		log.Fatal(err)
	}
	defer hubA.Close()
	addrA := hubA.Addr().String()
	amA = &archivists{hub: hubA, hubAddr: addrA, dir: filepath.Join(tmp, "a"), siteID: archSiteA, m: make(map[string]*site)}
	ring1, err := shardmap.NewRing(1, []string{addrA})
	if err != nil {
		log.Fatal(err)
	}
	if err := hubA.ConfigureRing(addrA, ring1); err != nil {
		log.Fatal(err)
	}

	// Hub B is up but not yet in the ring.
	var amB *archivists
	hubB, err := treedoc.ListenHub("127.0.0.1:0",
		treedoc.WithHubOwnership(func(doc string, epoch uint64, acquired bool) {
			amB.ownership(doc, epoch, acquired)
		}))
	if err != nil {
		log.Fatal(err)
	}
	defer hubB.Close()
	addrB := hubB.Addr().String()
	amB = &archivists{hub: hubB, hubAddr: addrB, dir: filepath.Join(tmp, "b"), siteID: archSiteB, m: make(map[string]*site)}

	// Pick one document that stays on A and one the epoch-2 ring hands to
	// B — computable in advance because the diff is deterministic on every
	// process (shardmap.Moved).
	ring2, err := shardmap.NewRing(2, []string{addrA, addrB})
	if err != nil {
		log.Fatal(err)
	}
	var docStay, docMove string
	for i := 0; docStay == "" || docMove == ""; i++ {
		doc := fmt.Sprintf("doc-%d", i)
		if ring2.Owner(doc) == addrA {
			if docStay == "" {
				docStay = doc
			}
		} else if docMove == "" {
			docMove = doc
		}
	}
	fmt.Printf("hub A %s relaying at ring epoch 1; %q will stay, %q will move to B %s at epoch 2\n",
		addrA, docStay, docMove, addrB)
	amA.ensure(docMove) // the archivist whose state the handoff streams

	dial := func(id treedoc.SiteID, doc string) *site {
		buf, err := treedoc.NewTextBuffer(treedoc.WithSite(id))
		if err != nil {
			log.Fatal(err)
		}
		eng, err := treedoc.NewEngine(id, buf, treedoc.WithSyncInterval(25*time.Millisecond))
		if err != nil {
			log.Fatal(err)
		}
		link, err := treedoc.DialDoc(addrA, doc)
		if err != nil {
			log.Fatal(err)
		}
		eng.Connect(link)
		return &site{id: id, doc: doc, buf: buf, eng: eng}
	}
	moving := []*site{dial(1, docMove), dial(2, docMove)}
	staying := []*site{dial(3, docStay), dial(4, docStay)}
	writers := append(append([]*site{}, moving...), staying...)

	write := func(s *site, phase int, pace time.Duration) {
		rng := rand.New(rand.NewSource(int64(s.id)*10 + int64(phase)))
		for i := 0; i < editsPerPhase; i++ {
			n := s.buf.Len()
			var ops []treedoc.Op
			var err error
			if n > 0 && rng.Intn(5) == 0 {
				ops, err = s.buf.Delete(rng.Intn(n), 1)
			} else {
				ops, err = s.buf.Insert(rng.Intn(n+1), fmt.Sprintf("%s-s%d.%d ", s.doc, s.id, i))
			}
			if errors.Is(err, treedoc.ErrOutOfRange) {
				i--
				continue
			}
			if err != nil {
				log.Fatal(err)
			}
			if err := s.eng.Broadcast(ops...); err != nil {
				log.Fatal(err)
			}
			if pace > 0 {
				time.Sleep(pace)
			}
		}
	}

	// Phase 1: everyone writes through hub A; the archivist absorbs the
	// moving document's history.
	var wg sync.WaitGroup
	for _, s := range writers {
		wg.Add(1)
		go func(s *site) { defer wg.Done(); write(s, 1, 0) }(s)
	}
	wg.Wait()
	archA := amA.get(docMove)
	if !converge(append([]*site{archA}, moving...), 30*time.Second) || !converge(staying, 30*time.Second) {
		log.Fatal("BUG: phase 1 did not converge")
	}
	phase1VC := moving[0].eng.Clock()
	phase1Ops := phase1VC.Get(1) + phase1VC.Get(2)
	fmt.Printf("phase 1 converged: %q at %d ops, %q at %d runes\n",
		docMove, phase1Ops, docStay, staying[0].buf.Len())

	// Phase 2: writers keep editing while hub B joins the ring. Hub A
	// adopts the announced epoch-2 ring, streams the archivist state to B,
	// and re-points the attached writers — live.
	for _, s := range writers {
		wg.Add(1)
		go func(s *site) { defer wg.Done(); write(s, 2, time.Millisecond) }(s)
	}
	time.Sleep(25 * time.Millisecond)
	fmt.Printf("hub B joining the ring at epoch 2 with writers active...\n")
	if err := hubB.ConfigureRing(addrB, ring2); err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for amB.get(docMove) == nil && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	archB := amB.get(docMove)
	if archB == nil {
		log.Fatal("BUG: hub B never acquired the moving document")
	}
	if !converge(append([]*site{archB}, moving...), 30*time.Second) || !converge(staying, 30*time.Second) {
		log.Fatal("BUG: phase 2 did not converge")
	}

	// Byte-identical everywhere, including the new owner's archivist.
	for _, group := range [][]*site{append([]*site{archB}, moving...), staying} {
		want := group[0].buf.String()
		for _, s := range group {
			if s.buf.String() != want {
				log.Fatalf("BUG: site %d diverged on doc %q", s.id, s.doc)
			}
			if err := s.buf.Doc().Check(); err != nil {
				log.Fatal(err)
			}
		}
	}
	if strings.Contains(moving[0].buf.String(), docStay+"-s") ||
		strings.Contains(staying[0].buf.String(), docMove+"-s") {
		log.Fatal("BUG: content leaked across documents")
	}

	totalVC := moving[0].eng.Clock()
	total := totalVC.Get(1) + totalVC.Get(2)
	fmt.Printf("converged after live reshard: %q=%d runes on 3 replicas, %q=%d runes on 2 replicas\n",
		docMove, moving[0].buf.Len(), docStay, staying[0].buf.Len())
	fmt.Printf("new owner archivist: %d snapshots installed, %d of %d ops replayed live (phase 1's %d came via the streamed snapshot)\n",
		archB.eng.SnapshotsInstalled(), archB.eng.Applied(), total, phase1Ops)
	if archB.eng.SnapshotsInstalled() == 0 {
		log.Fatal("BUG: new owner archivist never installed the handoff snapshot")
	}
	if archB.eng.Applied() > total-phase1Ops {
		log.Fatal("BUG: new owner archivist replayed pre-snapshot ops")
	}
	fmt.Printf("hub A: ring epoch %d, %d handoffs out, %d forwarded frames; hub B: %d handoffs in\n",
		hubA.RingEpoch(), hubA.HandoffsOut(), hubA.Forwards(), hubB.HandoffsIn())

	for _, s := range writers {
		s.eng.Stop()
	}
	amB.ownership(docMove, hubB.RingEpoch(), false)
}

// converge polls until every engine's delivered clock in the group is
// identical (all broadcast operations applied everywhere) or the deadline
// passes.
func converge(sites []*site, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		clocks := make([]string, len(sites))
		for i, s := range sites {
			clocks[i] = s.eng.Clock().String()
		}
		same := true
		for _, c := range clocks[1:] {
			if c != clocks[0] {
				same = false
				break
			}
		}
		if same {
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	return false
}

// Wiki: a single-site wiki-page lifecycle in the style of the paper's
// Wikipedia workloads — paragraph atoms, revision sessions dominated by
// modifications (delete + insert), a vandalism episode with an
// administrator revert, and heuristic flattening of cold regions keeping
// the metadata small. Prints Table-1-style measurements as the page evolves.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/treedoc/treedoc"
)

func main() {
	page, err := treedoc.New(
		treedoc.WithSite(1),
		treedoc.WithFlattenEvery(2, 1), // flatten a cold subtree every 2 revisions
	)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))

	// The stub article.
	for i, p := range []string{
		"Treedoc is a replicated data type for cooperative editing.",
		"It was introduced at ICDCS 2009.",
		"Replicas converge without concurrency control.",
	} {
		if _, err := page.InsertAt(i, p); err != nil {
			log.Fatal(err)
		}
	}
	page.EndRevision()
	report(page, "stub created")

	// Organic growth: 40 revisions of modify-heavy editing.
	para := 0
	for rev := 0; rev < 40; rev++ {
		edits := 1 + rng.Intn(3)
		for e := 0; e < edits; e++ {
			pos := rng.Intn(page.Len())
			if rng.Float64() < 0.6 {
				// Modify = delete + insert, as the paper models it.
				if _, err := page.DeleteAt(pos); err != nil {
					log.Fatal(err)
				}
				if _, err := page.InsertAt(pos, fmt.Sprintf("revised paragraph %d", para)); err != nil {
					log.Fatal(err)
				}
			} else {
				if _, err := page.InsertAt(pos, fmt.Sprintf("new paragraph %d", para)); err != nil {
					log.Fatal(err)
				}
			}
			para++
		}
		page.EndRevision()
	}
	report(page, "after 40 revisions of organic editing")

	// Vandalism: a third of the page defaced in one revision…
	n := page.Len()
	chunk := n / 3
	start := rng.Intn(n - chunk)
	var removed []string
	for i := 0; i < chunk; i++ {
		atom, err := page.AtomAt(start)
		if err != nil {
			log.Fatal(err)
		}
		removed = append(removed, atom)
		if _, err := page.DeleteAt(start); err != nil {
			log.Fatal(err)
		}
	}
	page.EndRevision()
	report(page, fmt.Sprintf("vandalised: %d paragraphs deleted", chunk))

	// …and the administrator reverts it (same text, fresh identifiers).
	if _, err := page.InsertRunAt(start, removed); err != nil {
		log.Fatal(err)
	}
	page.EndRevision()
	report(page, "administrator restored the text")

	// Quiesce: a few idle revisions let the flatten heuristic compact
	// everything that is no longer being edited.
	for i := 0; i < 6; i++ {
		page.EndRevision()
	}
	report(page, "after quiescence (flatten heuristic caught up)")

	if err := page.Check(); err != nil {
		log.Fatal(err)
	}
}

func report(page *treedoc.Doc, what string) {
	s := page.Stats()
	fmt.Printf("%-48s %4d paras | %4d nodes | %5.1f%% non-tombstone | avg PosID %5.1f bits | mem ovhd %.2fx\n",
		what, s.Tree.LiveAtoms, s.Tree.Nodes,
		100*s.Tree.NonTombstoneFraction(), s.Tree.AvgIDBits(), s.Tree.MemOverheadRatio())
}

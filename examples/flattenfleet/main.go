// Flattenfleet: the distributed flatten commitment protocol of Section
// 4.2.1 in action. Three replicas edit; one proposes compacting the
// document. A proposal racing a concurrent edit aborts harmlessly ("a
// conflicting edit causes a flatten to abort, leaving no side-effects");
// a proposal on a quiescent document commits everywhere and reduces the
// replicas to zero-overhead arrays.
package main

import (
	"fmt"
	"log"

	"github.com/treedoc/treedoc"
)

func main() {
	cluster, err := treedoc.NewCluster(3,
		treedoc.WithLatency(20, 40),
		treedoc.WithSeed(11),
	)
	if err != nil {
		log.Fatal(err)
	}
	one := replica(cluster, 1)
	two := replica(cluster, 2)

	for i := 0; i < 30; i++ {
		must(one.InsertAt(i, fmt.Sprintf("line %02d", i)))
	}
	cluster.Run(0) // replicate the document before site 2 starts deleting
	for i := 0; i < 10; i++ {
		must(two.DeleteAt(0)) // churn: tombstones pile up under SDIS
	}
	cluster.Run(0)
	fmt.Printf("before flatten: nodes=%d tombstones=%d (converged=%v)\n",
		one.Stats().Tree.Nodes, one.Stats().Tree.DeadMinis, cluster.Converged())

	// Attempt 1: site 1 proposes while site 2's edit is still in flight.
	must(two.InsertAt(0, "racing edit"))
	one.ProposeFlatten()
	cluster.Run(0)
	fmt.Printf("racing proposal: flattens applied=%d (expected 0: the edit made a replica vote No)\n",
		one.FlattensApplied())

	// Attempt 2: quiescent document — unanimous Yes, commit at every site.
	one.ProposeFlatten()
	// The coordinator voted Yes on its own replica immediately, locking the
	// region until the decision arrives; its local edits are held off:
	if err := one.InsertAt(0, "blocked?"); err == treedoc.ErrRegionLocked {
		fmt.Println("local edit during the open vote: correctly rejected with ErrRegionLocked")
	}
	cluster.Run(0)
	fmt.Printf("quiescent proposal: flattens applied=%d\n", one.FlattensApplied())

	for _, site := range cluster.Sites() {
		st := replica(cluster, site).Stats()
		fmt.Printf("  site %d: %d atoms, %d nodes, %d bytes mem overhead (zero = plain array)\n",
			site, st.Tree.LiveAtoms, st.Tree.Nodes, st.Tree.MemBytes)
	}
	if !cluster.Converged() {
		log.Fatal("BUG: diverged")
	}
	if err := cluster.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("converged with identical flattened state at all sites")
}

func replica(c *treedoc.Cluster, site treedoc.SiteID) *treedoc.Replica {
	r, err := c.Replica(site)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Flattenfleet: the distributed flatten commitment protocol of Section
// 4.2.1 running over real TCP — not the simulator. Three replicas dial an
// in-process relay hub (the same one cmd/treedoc-serve runs); one
// proposes compacting the document through Engine.ProposeFlatten. A
// proposal racing a concurrent edit aborts harmlessly ("a conflicting
// edit causes a flatten to abort, leaving no side-effects"); a proposal
// on a quiescent document commits everywhere, reduces every replica to a
// zero-overhead array, and becomes the snapshot a late joiner catches up
// from without replaying any pre-flatten history.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/treedoc/treedoc"
)

type site struct {
	id  treedoc.SiteID
	buf *treedoc.TextBuffer
	eng *treedoc.Engine
}

func main() {
	hub, err := treedoc.ListenHub("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer hub.Close()

	sites := make([]*site, 3)
	for i := range sites {
		sites[i] = dialSite(hub.Addr().String(), treedoc.SiteID(i+1))
		defer sites[i].eng.Stop()
	}
	one, two := sites[0], sites[1]

	for i := 0; i < 30; i++ {
		edit(one, fmt.Sprintf("line %02d\n", i))
	}
	waitConverged(sites)
	for i := 0; i < 10; i++ { // churn: tombstones pile up under SDIS
		ops, err := two.buf.Delete(0, 8)
		must(err)
		must(two.eng.Broadcast(ops...))
	}
	waitConverged(sites)
	st := one.buf.Stats()
	fmt.Printf("before flatten: %d nodes, %d tombstones, %d bytes overhead\n",
		st.Tree.Nodes, st.Tree.DeadMinis, st.Tree.MemBytes)

	// Attempt 1: site 2 has applied an edit its engine has not stamped yet
	// — an in-flight local edit. Site 2 votes No and the proposal aborts
	// with no side effects.
	racing, err := two.buf.Append("racing edit\n")
	must(err)
	must(one.eng.ProposeFlatten())
	waitFor(func() bool { return one.eng.FlattensAborted() == 1 }, "abort")
	fmt.Printf("racing proposal: aborted (flattens applied everywhere: %d)\n",
		one.eng.FlattensApplied()+two.eng.FlattensApplied()+sites[2].eng.FlattensApplied())

	// Attempt 2: release the edit, quiesce, retry — unanimous Yes. The
	// committed flatten travels the causal stream as an operation, so
	// every replica applies it in order and converges.
	must(two.eng.Broadcast(racing...))
	waitConverged(sites)
	must(one.eng.ProposeFlatten())
	waitFor(func() bool {
		for _, s := range sites {
			if s.eng.FlattensApplied() == 0 {
				return false
			}
		}
		return true
	}, "commit")
	waitConverged(sites)
	for _, s := range sites {
		st := s.buf.Stats()
		fmt.Printf("  site %d: %d runes, %d nodes, %d bytes overhead (zero = plain array)\n",
			s.id, st.Tree.LiveAtoms, st.Tree.Nodes, st.Tree.MemBytes)
	}

	// A post-flatten joiner: the flatten epoch is a snapshot barrier, so
	// the newcomer installs one snapshot instead of replaying the history.
	joiner := dialSite(hub.Addr().String(), 9)
	defer joiner.eng.Stop()
	all := append(append([]*site(nil), sites...), joiner)
	waitConverged(all)
	fmt.Printf("late joiner: caught up via %d snapshot(s), replayed %d ops\n",
		joiner.eng.SnapshotsInstalled(), joiner.eng.Applied())
	fmt.Println("converged with identical flattened state at all sites over TCP")
}

func dialSite(addr string, id treedoc.SiteID) *site {
	buf, err := treedoc.NewTextBuffer(treedoc.WithSite(id))
	must(err)
	eng, err := treedoc.NewEngine(id, buf,
		treedoc.WithSyncInterval(25*time.Millisecond),
		treedoc.WithFlattenTimeout(500*time.Millisecond),
		treedoc.WithSnapshotThreshold(64))
	must(err)
	link, err := treedoc.Dial(addr)
	must(err)
	eng.Connect(link)
	return &site{id: id, buf: buf, eng: eng}
}

func edit(s *site, text string) {
	ops, err := s.buf.Append(text)
	must(err)
	must(s.eng.Broadcast(ops...))
}

// waitConverged polls until every replica holds the same bytes and every
// engine's delivered clock matches.
func waitConverged(sites []*site) {
	waitFor(func() bool {
		want := sites[0].buf.String()
		base := sites[0].eng.Clock()
		for _, s := range sites[1:] {
			c := s.eng.Clock()
			if s.buf.String() != want || c == nil || !c.Dominates(base) || !base.Dominates(c) {
				return false
			}
		}
		return true
	}, "convergence")
}

func waitFor(done func() bool, what string) {
	deadline := time.Now().Add(30 * time.Second)
	for !done() {
		if time.Now().After(deadline) {
			log.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Quickstart: two replicas of a Treedoc document editing concurrently and
// converging by exchanging commutative operations — the paper's core claim,
// in a dozen lines.
package main

import (
	"fmt"
	"log"

	"github.com/treedoc/treedoc"
)

func main() {
	alice, err := treedoc.New(treedoc.WithSite(1))
	if err != nil {
		log.Fatal(err)
	}
	bob, err := treedoc.New(treedoc.WithSite(2))
	if err != nil {
		log.Fatal(err)
	}

	// Alice drafts the document and ships her operations to Bob.
	var history []treedoc.Op
	for i, line := range []string{
		"Shopping list:",
		"- bread",
		"- cheese",
	} {
		op, err := alice.InsertAt(i, line)
		if err != nil {
			log.Fatal(err)
		}
		history = append(history, op)
	}
	if err := bob.ApplyAll(history); err != nil {
		log.Fatal(err)
	}

	// Concurrent edits: neither replica has seen the other's operation yet.
	opAlice, err := alice.InsertAt(2, "- olives") // between bread and cheese
	if err != nil {
		log.Fatal(err)
	}
	opBob, err := bob.Append("- wine")
	if err != nil {
		log.Fatal(err)
	}

	// Exchange. Concurrent operations commute: apply order does not matter.
	if err := alice.Apply(opBob); err != nil {
		log.Fatal(err)
	}
	if err := bob.Apply(opAlice); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Alice's replica:")
	fmt.Println(alice.ContentString())
	fmt.Println()
	fmt.Println("Bob's replica:")
	fmt.Println(bob.ContentString())
	fmt.Println()
	if alice.ContentString() == bob.ContentString() {
		fmt.Println("converged: identical documents, no locks, no transforms")
	} else {
		log.Fatal("BUG: replicas diverged")
	}
}

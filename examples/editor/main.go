// Editor: the paper's future-work scenario — Treedoc behind a text editor
// buffer (Section 7: "implementing Treedoc within an existing text editor").
// Two character-granularity buffers replay a recorded typing session
// concurrently: every keystroke is a splice, every splice ships commuting
// operations, and the cursors never block on each other.
package main

import (
	"fmt"
	"log"

	"github.com/treedoc/treedoc"
)

type keystroke struct {
	who  int // 1 = left editor, 2 = right editor
	off  int
	del  int
	text string
}

func main() {
	left, err := treedoc.NewTextBuffer(treedoc.WithSite(1))
	if err != nil {
		log.Fatal(err)
	}
	right, err := treedoc.NewTextBuffer(treedoc.WithSite(2))
	if err != nil {
		log.Fatal(err)
	}

	// A shared draft, replicated.
	ops, err := left.Append("CRDTs converge without locks.")
	if err != nil {
		log.Fatal(err)
	}
	if err := right.ApplyAll(ops); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("draft: %q\n\n", left.String())

	// A concurrent editing burst: neither editor sees the other's changes
	// until the end of the burst (offline typing, slow link — same thing).
	leftSession := []keystroke{
		{1, 0, 0, "Sequence "},       // prepend
		{1, 15, 9, "replicas agree"}, // rewrite the middle
	}
	rightSession := []keystroke{
		{2, 29, 0, " Ever."}, // append (against the original draft)
		{2, 0, 5, "CRDTS"},   // shout the acronym
	}

	var fromLeft, fromRight []treedoc.Op
	for _, k := range leftSession {
		ops, err := left.Splice(k.off, k.del, k.text)
		if err != nil {
			log.Fatal(err)
		}
		fromLeft = append(fromLeft, ops...)
	}
	for _, k := range rightSession {
		ops, err := right.Splice(k.off, k.del, k.text)
		if err != nil {
			log.Fatal(err)
		}
		fromRight = append(fromRight, ops...)
	}
	fmt.Printf("left editor typed:  %q\n", left.String())
	fmt.Printf("right editor typed: %q\n\n", right.String())

	// The link comes back: exchange the sessions (in either order).
	if err := left.ApplyAll(fromRight); err != nil {
		log.Fatal(err)
	}
	if err := right.ApplyAll(fromLeft); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("left after merge:  %q\n", left.String())
	fmt.Printf("right after merge: %q\n", right.String())
	if left.String() != right.String() {
		log.Fatal("BUG: editors diverged")
	}
	fmt.Println("\nboth editors show the same buffer — merged character by character")

	// Housekeeping: compact the quiescent buffer to a plain array.
	if err := left.Compact(); err != nil {
		log.Fatal(err)
	}
	st := left.Stats()
	fmt.Printf("after compaction: %d chars, %d bytes of metadata\n",
		st.Tree.LiveAtoms, st.Tree.MemBytes)
}

package treedoc

import (
	"fmt"

	"github.com/treedoc/treedoc/internal/cluster"
	"github.com/treedoc/treedoc/internal/core"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/simnet"
)

// ClusterOption configures a simulated replica group.
type ClusterOption func(*clusterConfig) error

type clusterConfig struct {
	net  simnet.Config
	doc  func(SiteID) core.Config
	mode Mode
}

// WithLatency bounds the simulated network's uniform random message delay
// in virtual milliseconds (default 5..50).
func WithLatency(min, max int64) ClusterOption {
	return func(c *clusterConfig) error {
		if min < 0 || max < min {
			return fmt.Errorf("treedoc: invalid latency bounds [%d,%d]", min, max)
		}
		c.net.MinLatency, c.net.MaxLatency = min, max
		return nil
	}
}

// WithSeed fixes the network randomness for reproducible runs.
func WithSeed(seed int64) ClusterOption {
	return func(c *clusterConfig) error {
		c.net.Seed = seed
		return nil
	}
}

// WithLoss makes the simulated network drop each operation broadcast with
// the given probability (0..1). Lost operations are recovered by
// anti-entropy: see Replica.SyncWith. Commitment-protocol traffic models a
// reliable channel and is never dropped.
func WithLoss(p float64) ClusterOption {
	return func(c *clusterConfig) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("treedoc: loss probability %v out of [0,1]", p)
		}
		c.net.Loss = p
		return nil
	}
}

// WithClusterMode sets every replica's disambiguator scheme.
func WithClusterMode(m Mode) ClusterOption {
	return func(c *clusterConfig) error {
		switch m {
		case SDIS, UDIS:
			c.mode = m
			return nil
		default:
			return fmt.Errorf("treedoc: invalid mode %v", m)
		}
	}
}

// Cluster is a simulated cooperative-editing group: n replicas exchanging
// operations through causal broadcast over a deterministic discrete-event
// network, with the flatten commitment protocol available. It is the
// environment the paper targets — peers editing optimistically and
// synchronising in the background — packaged for tests, benchmarks and
// examples.
type Cluster struct {
	c *cluster.Cluster
}

// NewCluster creates a group with site identifiers 1..sites.
func NewCluster(sites int, opts ...ClusterOption) (*Cluster, error) {
	var cfg clusterConfig
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	cc := cluster.Config{Sites: sites, Net: cfg.net}
	if cfg.mode != 0 {
		cc.Doc = func(site ident.SiteID) core.Config {
			return core.Config{Mode: cfg.mode}
		}
	}
	c, err := cluster.New(cc)
	if err != nil {
		return nil, fmt.Errorf("treedoc: new cluster: %w", err)
	}
	return &Cluster{c: c}, nil
}

// Replica is one member of a Cluster. Local edits broadcast automatically;
// delivery happens as the cluster Runs.
type Replica struct {
	r *cluster.Replica
}

// Replica returns the replica with the given site id (1-based).
func (c *Cluster) Replica(site SiteID) (*Replica, error) {
	r := c.c.Replica(site)
	if r == nil {
		return nil, fmt.Errorf("treedoc: no replica with site %d", site)
	}
	return &Replica{r: r}, nil
}

// Sites returns the member site ids.
func (c *Cluster) Sites() []SiteID { return c.c.Sites() }

// InsertAt edits locally and broadcasts.
func (r *Replica) InsertAt(i int, atom string) error { return r.r.InsertAt(i, atom) }

// Append inserts at the end of the document.
func (r *Replica) Append(atom string) error { return r.r.InsertAt(r.r.Doc().Len(), atom) }

// InsertRunAt inserts a consecutive run locally and broadcasts.
func (r *Replica) InsertRunAt(i int, atoms []string) error { return r.r.InsertRunAt(i, atoms) }

// DeleteAt edits locally and broadcasts.
func (r *Replica) DeleteAt(i int) error { return r.r.DeleteAt(i) }

// Len returns the replica's current document length.
func (r *Replica) Len() int { return r.r.Doc().Len() }

// Content returns the replica's current document.
func (r *Replica) Content() []string { return r.r.Doc().Content() }

// ContentString joins the document with newlines.
func (r *Replica) ContentString() string { return r.r.Doc().ContentString() }

// Stats measures the replica's overheads.
func (r *Replica) Stats() Stats { return r.r.Doc().Stats() }

// EndRevision advances the replica's revision clock (used by the cold-
// subtree heuristics).
func (r *Replica) EndRevision() { r.r.Doc().EndRevision() }

// ProposeFlatten starts the commitment protocol to compact the whole
// document, with this replica as coordinator. The proposal aborts harmlessly
// if any replica observed a concurrent edit.
func (r *Replica) ProposeFlatten() { r.r.ProposeFlatten(nil) }

// ProposeFlattenCold proposes compacting the largest subtree quiet for the
// given number of revisions. It reports whether a candidate existed.
func (r *Replica) ProposeFlattenCold(revisions int) bool {
	_, ok := r.r.ProposeFlattenCold(int64(revisions), 2)
	return ok
}

// FlattensApplied counts committed flattens at this replica.
func (r *Replica) FlattensApplied() int { return r.r.FlattensApplied() }

// SyncWith runs one anti-entropy exchange with a peer: this replica sends
// its vector-clock digest and the peer retransmits every operation the
// digest does not cover (including third-party operations it relayed).
// Call periodically on lossy networks; redundant syncs are cheap no-ops.
func (r *Replica) SyncWith(peer SiteID) { r.r.SyncWith(peer) }

// Run delivers network messages until quiescence (maxSteps 0) or until
// maxSteps messages have been delivered; it returns the number delivered.
func (c *Cluster) Run(maxSteps int) int { return c.c.Run(maxSteps) }

// Converged reports whether all replicas hold identical content.
func (c *Cluster) Converged() bool {
	ok, _ := c.c.Converged()
	return ok
}

// Partition severs the network between two sites (messages are held and
// delivered after healing, modelling disconnected operation).
func (c *Cluster) Partition(a, b SiteID) error { return c.c.Net().Partition(a, b) }

// HealAll removes all partitions.
func (c *Cluster) HealAll() { c.c.Net().HealAll() }

// Now returns the simulated clock in virtual milliseconds.
func (c *Cluster) Now() int64 { return c.c.Net().Now() }

// Check verifies every replica's structural invariants.
func (c *Cluster) Check() error { return c.c.Check() }

package treedoc

import (
	"time"

	"github.com/treedoc/treedoc/internal/transport"
)

// This file re-exports the real concurrent replication engine
// (internal/transport). Where Cluster simulates a replica group inside one
// discrete-event loop, an Engine replicates a live Doc or TextBuffer
// across goroutines and sockets: local edits are stamped and batched to
// peers, remote operations are applied in causal order, and a periodic
// anti-entropy exchange repairs anything lost to full queues, slow
// consumers, or late joiners.
//
// Typical wiring, one replica per process, all relayed by a hub
// (cmd/treedoc-serve):
//
//	buf, _ := treedoc.NewTextBuffer(treedoc.WithSite(site))
//	eng, _ := treedoc.NewEngine(site, buf)
//	link, _ := treedoc.Dial("hub-host:9707")
//	eng.Connect(link)
//
//	ops, _ := buf.Splice(off, del, text) // local edit, no latency
//	_ = eng.Broadcast(ops...)            // background replication
//
// Each replica's local edits must be generated and broadcast in order
// (one writer goroutine per replica, or a lock around edit+Broadcast).

// Engine replicates one Doc or TextBuffer over real links. See
// internal/transport for the full contract.
type Engine = transport.Engine

// EngineOption configures an Engine.
type EngineOption = transport.Option

// Link is a frame pipe between two engines (or an engine and a hub).
type Link = transport.Link

// Hub is the relay server behind cmd/treedoc-serve, embeddable for tests
// and in-process deployments.
type Hub = transport.Hub

// HubOption configures a Hub.
type HubOption = transport.HubOption

// NewEngine creates and starts a replication engine for site wrapping
// replica (a *Doc, *TextBuffer, or anything applying operations).
func NewEngine(site SiteID, replica transport.Applier, opts ...EngineOption) (*Engine, error) {
	return transport.NewEngine(site, replica, opts...)
}

// NewChanPair creates a connected pair of in-process links with the given
// queue depth per direction: the zero-copy transport for replicas sharing
// a process.
func NewChanPair(depth int) (Link, Link) {
	a, b := transport.ChanPair(depth)
	return a, b
}

// Dial connects to a listening hub or peer over TCP and returns the
// framed link.
func Dial(addr string) (Link, error) {
	return transport.Dial(addr)
}

// ListenHub starts a relay hub on addr (see cmd/treedoc-serve for the
// standalone binary).
func ListenHub(addr string, opts ...HubOption) (*Hub, error) {
	return transport.ListenHub(addr, opts...)
}

// WithBatchSize sets the maximum operations packed into one outbound
// frame (default 64).
func WithBatchSize(n int) EngineOption { return transport.WithBatchSize(n) }

// WithSyncInterval sets the anti-entropy period (default 200ms).
func WithSyncInterval(d time.Duration) EngineOption { return transport.WithSyncInterval(d) }

// WithQueueDepth sets the per-peer outbound queue depth (default 256);
// frames to a saturated peer are dropped and healed by anti-entropy.
func WithQueueDepth(n int) EngineOption { return transport.WithQueueDepth(n) }

// WithHubQueueDepth sets a hub's per-client outbound queue depth.
func WithHubQueueDepth(n int) HubOption { return transport.WithHubQueueDepth(n) }

// WithHubLogger directs a hub's connection logging.
func WithHubLogger(logf func(format string, args ...any)) HubOption {
	return transport.WithHubLogger(logf)
}

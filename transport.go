package treedoc

import (
	"time"

	"github.com/treedoc/treedoc/internal/transport"
)

// This file re-exports the real concurrent replication engine
// (internal/transport). Where Cluster simulates a replica group inside one
// discrete-event loop, an Engine replicates a live Doc or TextBuffer
// across goroutines and sockets: local edits are stamped and batched to
// peers, remote operations are applied in causal order, and a periodic
// anti-entropy exchange repairs anything lost to full queues, slow
// consumers, or late joiners.
//
// Typical wiring, one replica per process, all relayed by a hub
// (cmd/treedoc-serve):
//
//	buf, _ := treedoc.NewTextBuffer(treedoc.WithSite(site))
//	eng, _ := treedoc.NewEngine(site, buf)
//	link, _ := treedoc.Dial("hub-host:9707")
//	eng.Connect(link)
//
//	ops, _ := buf.Splice(off, del, text) // local edit, no latency
//	_ = eng.Broadcast(ops...)            // background replication
//
//	_ = eng.ProposeFlatten()             // compact via the commitment protocol
//
// Each replica's local edits must be generated and broadcast in order
// (one writer goroutine per replica, or a lock around edit+Broadcast).
//
// Engine.ProposeFlatten and Engine.ProposeFlattenCold run the paper's
// flatten commitment protocol (Section 4.2.1) over the live links — the
// same Cluster.ProposeFlatten semantics, but across processes: every
// connected replica votes, any replica that observed (or holds) a
// conflicting edit votes No and aborts the round harmlessly, and a
// committed flatten is broadcast as an operation in the causal stream, so
// it orders before all post-flatten edits everywhere, lands in the
// durable log, and becomes the snapshot barrier late joiners catch up
// from. While a vote is open the affected region rejects local edits with
// ErrRegionLocked — retry after the round decides.

// Engine replicates one Doc or TextBuffer over real links. See
// internal/transport for the full contract.
type Engine = transport.Engine

// EngineOption configures an Engine.
type EngineOption = transport.Option

// FsyncMode selects when the durable log (WithLogDir) reaches stable
// storage: FsyncBatch (default), FsyncAlways, or FsyncOff.
type FsyncMode = transport.FsyncMode

// Durable log fsync policies.
const (
	// FsyncBatch syncs once per flushed batch, before frames reach peers:
	// no peer can ever have seen a stamp the log could forget.
	FsyncBatch = transport.FsyncBatch
	// FsyncAlways syncs every append.
	FsyncAlways = transport.FsyncAlways
	// FsyncOff never syncs (benchmarks only): a crash may forget stamps
	// peers remember, permanently desynchronising the site.
	FsyncOff = transport.FsyncOff
)

// Link is a frame pipe between two engines (or an engine and a hub).
type Link = transport.Link

// Doc and TextBuffer satisfy the engine's snapshot contract, so engines
// wrapping them can compact their logs and serve snapshot catch-up — and
// the engine's flatten contract, so Engine.ProposeFlatten can run the
// paper's commitment protocol over live links.
var (
	_ transport.Snapshotter = (*Doc)(nil)
	_ transport.Snapshotter = (*TextBuffer)(nil)
	_ transport.Flattener   = (*Doc)(nil)
	_ transport.Flattener   = (*TextBuffer)(nil)
)

// Hub is the relay server behind cmd/treedoc-serve, embeddable for tests
// and in-process deployments. It relays within per-document groups: see
// DialDoc, Session and the kindHello handshake in docs/ARCHITECTURE.md.
type Hub = transport.Hub

// HubOption configures a Hub.
type HubOption = transport.HubOption

// HubDocStats is one document's relay counters on a Hub (see
// Hub.DocStats).
type HubDocStats = transport.DocStats

// HubStats is a point-in-time aggregate of every Hub counter, shaped for
// machine export (see Hub.Stats): cmd/treedoc-serve serves it as an
// expvar under -stats, and cmd/treedoc-load snapshots it into
// load-report.json.
type HubStats = transport.HubStats

// EngineStats is a point-in-time aggregate of one Engine's counters,
// including the delta anti-entropy telemetry (digests sent/suppressed,
// replay ops/bytes); cmd/treedoc-serve publishes one per archivist
// document under the "treedoc.engines" expvar (see Engine.Stats).
type EngineStats = transport.EngineStats

// Session multiplexes several document-scoped links over shared hub
// connections, following shard redirects transparently.
type Session = transport.Session

// DefaultDoc is the document legacy Dial clients are attached to: a hub
// routes every bare (non-envelope) frame to it.
const DefaultDoc = transport.DefaultDoc

// NewEngine creates and starts a replication engine for site wrapping
// replica (a *Doc, *TextBuffer, or anything applying operations).
func NewEngine(site SiteID, replica transport.Applier, opts ...EngineOption) (*Engine, error) {
	return transport.NewEngine(site, replica, opts...)
}

// NewChanPair creates a connected pair of in-process links with the given
// queue depth per direction: the zero-copy transport for replicas sharing
// a process.
func NewChanPair(depth int) (Link, Link) {
	a, b := transport.ChanPair(depth)
	return a, b
}

// Dial connects to a listening hub or peer over TCP and returns the
// framed link. A hub treats a Dial client as a legacy single-document
// client on DefaultDoc; use DialDoc or DialSession to name documents.
func Dial(addr string) (Link, error) {
	return transport.Dial(addr)
}

// DialDoc connects to a hub and attaches to one named document: the
// returned link carries only that document's frames, and a shard redirect
// (the addressed hub does not own the document) is followed
// transparently.
func DialDoc(addr, doc string) (Link, error) {
	return transport.DialDoc(addr, doc)
}

// DialSession prepares a multi-document session against the hub at addr:
// each Attach returns an independent per-document link sharing the
// underlying connections.
func DialSession(addr string) *Session {
	return transport.DialSession(addr)
}

// ListenHub starts a relay hub on addr (see cmd/treedoc-serve for the
// standalone binary).
func ListenHub(addr string, opts ...HubOption) (*Hub, error) {
	return transport.ListenHub(addr, opts...)
}

// WithBatchSize sets the maximum operations packed into one outbound
// frame (default 64).
func WithBatchSize(n int) EngineOption { return transport.WithBatchSize(n) }

// WithSyncInterval sets the anti-entropy period (default 200ms).
func WithSyncInterval(d time.Duration) EngineOption { return transport.WithSyncInterval(d) }

// WithQueueDepth sets the per-peer outbound queue depth (default 256);
// frames to a saturated peer are dropped and healed by anti-entropy.
func WithQueueDepth(n int) EngineOption { return transport.WithQueueDepth(n) }

// WithLogDir enables the durable operation log in dir: every stamped and
// delivered operation is appended to an append-only, CRC-checked segment
// store, and NewEngine replays the directory on start, so a restarted
// replica resumes exactly where it crashed and re-stamps nothing. The
// replica handed to NewEngine must be fresh; the engine rebuilds it from
// the stored snapshot and log suffix.
func WithLogDir(dir string) EngineOption { return transport.WithLogDir(dir) }

// WithFsync sets the durable log's fsync policy (default FsyncBatch).
func WithFsync(mode FsyncMode) EngineOption { return transport.WithFsync(mode) }

// WithCompactEvery sets how many retained operations accumulate before
// the engine snapshots the replica and truncates everything the snapshot
// covers — in memory always, on disk when WithLogDir is set (default
// 16384; 0 disables). This is what bounds a long-lived document's log.
func WithCompactEvery(n int) EngineOption { return transport.WithCompactEvery(n) }

// WithSnapshotThreshold sets how many operations behind a peer's
// anti-entropy digest must be before the engine serves a snapshot plus
// log suffix instead of a full op replay (default 8192; 0 disables
// threshold snapshots — peers below the compaction barrier still get
// them, since the ops below the barrier no longer exist).
func WithSnapshotThreshold(n int) EngineOption { return transport.WithSnapshotThreshold(n) }

// WithFlattenTimeout sets the flatten commitment deadline: a proposal
// still missing votes after this long aborts (presumed abort), and a
// replica whose Yes-vote lock has waited this long starts querying the
// coordinator for the decision. Default 2s (or five sync intervals when
// WithSyncInterval is longer).
func WithFlattenTimeout(d time.Duration) EngineOption { return transport.WithFlattenTimeout(d) }

// WithHubQueueDepth sets a hub's per-client outbound queue depth.
func WithHubQueueDepth(n int) HubOption { return transport.WithHubQueueDepth(n) }

// WithHubLogger directs a hub's connection logging and slow-client drop
// warnings.
func WithHubLogger(logf func(format string, args ...any)) HubOption {
	return transport.WithHubLogger(logf)
}

// WithHubShards makes the hub one of N cooperating processes splitting
// the document space by consistent hashing: peers is the full ring
// membership (advertised addresses, identical on every process), self
// this process's own advertised address. Attaches for documents owned by
// another peer are redirected there; DialDoc and Session follow
// redirects transparently. The ring is epoch-versioned and can be changed
// live — see Hub.ConfigureRing, Hub.Resign and WithHubOwnership for
// online resharding with document handoff.
func WithHubShards(self string, peers []string) HubOption {
	return transport.WithHubShards(self, peers)
}

// WithHubSelf records the hub's own advertised address without
// configuring a ring: the hub owns every document until a ring is
// adopted, but can already answer ring queries and be named by a joining
// hub.
func WithHubSelf(self string) HubOption {
	return transport.WithHubSelf(self)
}

// WithHubOwnership installs a callback invoked when the hub acquires a
// document (an inbound handoff began streaming) or releases one (an
// outbound handoff finished) through a live reshard — the archivist
// lifecycle hook behind cmd/treedoc-serve's dynamic ring membership.
func WithHubOwnership(fn func(doc string, epoch uint64, acquired bool)) HubOption {
	return transport.WithHubOwnership(fn)
}

package treedoc

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section 5), plus the CPU-cost claim, baseline comparisons and
// ablations of the design choices called out in DESIGN.md §5. Regenerate
// everything with:
//
//	go test -bench=. -benchmem
//
// The table benchmarks report their headline quantity through
// b.ReportMetric so `go test -bench` output doubles as the experiment
// record; cmd/treedoc-bench prints the full formatted tables.

import (
	"fmt"
	"strings"
	"testing"

	"github.com/treedoc/treedoc/internal/bench"
	"github.com/treedoc/treedoc/internal/causal"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/trace"
	"github.com/treedoc/treedoc/internal/transport"
	"github.com/treedoc/treedoc/internal/vclock"
)

func mustTrace(b *testing.B, name string) *trace.Trace {
	b.Helper()
	p, err := trace.ProfileByName(name)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkTable1Measurements regenerates Table 1: overheads per document
// and flatten setting. Reported metric: mean memory overhead ratio across
// all rows.
func BenchmarkTable1Measurements(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1()
		if err != nil {
			b.Fatal(err)
		}
		var mem float64
		for _, r := range rows {
			mem += r.MemOvhd
		}
		b.ReportMetric(mem/float64(len(rows)), "memovhd/doc")
	}
}

// BenchmarkTable2Workloads regenerates Table 2: the workload statistics.
func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].Revisions), "avg-revisions")
	}
}

// BenchmarkTable3Tombstones regenerates Table 3: tombstone fraction under
// flatten and balancing. Reported metric: flatten-2 tombstone percentage
// without balancing (paper: 15.8%).
func BenchmarkTable3Tombstones(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := bench.Table3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cells[2].NoBalance, "flatten2-tomb-%")
	}
}

// BenchmarkTable4SDISvsUDIS regenerates Table 4. Reported metric: the
// no-flatten SDIS/UDIS overhead ratio (paper: 570/140 ≈ 4).
func BenchmarkTable4SDISvsUDIS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := bench.Table4()
		if err != nil {
			b.Fatal(err)
		}
		var sdis, udis float64
		for _, c := range cells {
			if c.Flatten == "no-flatten" && !c.Balanced {
				if c.Scheme == ident.SDIS {
					sdis = c.OverheadPerAtom
				} else {
					udis = c.OverheadPerAtom
				}
			}
		}
		if udis > 0 {
			b.ReportMetric(sdis/udis, "sdis/udis-ovhd")
		}
	}
}

// BenchmarkTable5VsLogoot regenerates Table 5. Reported metric: the mean
// Logoot/Treedoc identifier-size ratio (paper: 1.8–3.9).
func BenchmarkTable5VsLogoot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table5()
		if err != nil {
			b.Fatal(err)
		}
		var ratio float64
		for _, r := range rows {
			ratio += r.Ratio
		}
		b.ReportMetric(ratio/float64(len(rows)), "logoot/treedoc")
	}
}

// BenchmarkFigure6NodeEvolution regenerates Figure 6's two series. Reported
// metric: the peak node count of the acf.tex lifetime.
func BenchmarkFigure6NodeEvolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := bench.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		peak := 0
		for _, pt := range series {
			if pt.Nodes > peak {
				peak = pt.Nodes
			}
		}
		b.ReportMetric(float64(peak), "peak-nodes")
	}
}

// BenchmarkReplayDistributedComputing is the Section 5.2 CPU claim: the
// full 870-revision Wikipedia history replays in well under the paper's
// 1.44 seconds.
func BenchmarkReplayDistributedComputing(b *testing.B) {
	tr := mustTrace(b, "Distributed Computing")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.ReplayTreedoc(tr, bench.ReplayConfig{Mode: ident.SDIS}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayLatex compares the three sequence CRDTs on the same LaTeX
// history (extended baseline comparison beyond the paper's Table 5).
func BenchmarkReplayLatex(b *testing.B) {
	tr := mustTrace(b, "acf.tex")
	b.Run("treedoc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// SkipDisk: the logoot and woot baselines have no disk format,
			// so the wall-time comparison must not charge treedoc for
			// serialising one (BenchmarkStorageCodec measures that path).
			res, err := bench.ReplayTreedoc(tr, bench.ReplayConfig{Mode: ident.UDIS, SkipDisk: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Stats.Tree.AvgIDBits(), "bits/id")
		}
	})
	b.Run("logoot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := bench.ReplayLogoot(tr)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Stats.AvgIDBits(), "bits/id")
		}
	})
	b.Run("woot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := bench.ReplayWoot(tr)
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.LiveAtoms > 0 {
				b.ReportMetric(float64(res.Stats.TotalIDBits)/float64(res.Stats.LiveAtoms), "bits/id")
			}
		}
	})
}

// BenchmarkLocalEdits measures single-replica edit throughput at steady
// state: a fixed 10k-atom document, each iteration inserting and deleting
// so the document size (and with it the tree shape) stays constant.
// Growing the document with b.N would measure ever-larger documents
// instead of per-operation cost.
func BenchmarkLocalEdits(b *testing.B) {
	const steadySize = 10_000
	build := func(b *testing.B) *Doc {
		b.Helper()
		d, err := New(WithSite(1))
		if err != nil {
			b.Fatal(err)
		}
		atoms := make([]string, steadySize)
		for i := range atoms {
			atoms[i] = "atom"
		}
		if _, err := d.InsertRunAt(0, atoms); err != nil {
			b.Fatal(err)
		}
		return d
	}
	b.Run("append-delete", func(b *testing.B) {
		d := build(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.Append("atom"); err != nil {
				b.Fatal(err)
			}
			if _, err := d.DeleteAt(d.Len() - 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("insert-delete-front", func(b *testing.B) {
		d := build(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.InsertAt(0, "atom"); err != nil {
				b.Fatal(err)
			}
			if _, err := d.DeleteAt(0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("insert-delete-middle", func(b *testing.B) {
		d := build(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mid := d.Len() / 2
			if _, err := d.InsertAt(mid, "atom"); err != nil {
				b.Fatal(err)
			}
			if _, err := d.DeleteAt(mid); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("apply-remote", func(b *testing.B) {
		// Pre-build a bounded op batch and replay it round-robin against
		// fresh replicas so state cannot grow with b.N.
		const batch = 2_000
		src, err := New(WithSite(1))
		if err != nil {
			b.Fatal(err)
		}
		ops := make([]Op, 0, batch)
		for i := 0; i < batch; i++ {
			op, err := src.Append("atom")
			if err != nil {
				b.Fatal(err)
			}
			ops = append(ops, op)
		}
		dst, err := New(WithSite(2))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := dst.Apply(ops[i%batch]); err != nil {
				b.Fatal(err)
			}
			if i%batch == batch-1 {
				b.StopTimer()
				dst, err = New(WithSite(2))
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		}
	})
}

// BenchmarkAblationStrategy isolates the balancing heuristic (DESIGN.md
// ablation 1): identifier growth under pure appends.
func BenchmarkAblationStrategy(b *testing.B) {
	for _, tc := range []struct {
		name string
		opt  Option
	}{
		{"naive", WithNaiveAllocation()},
		{"balanced", WithBalancedAllocation()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := New(WithSite(1), tc.opt)
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < 1000; j++ {
					if _, err := d.Append("x"); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(d.Stats().Tree.AvgIDBits(), "bits/id")
			}
		})
	}
}

// BenchmarkAblationDisWidth compares disambiguator widths (DESIGN.md
// ablation 2): UDIS 10 B, SDIS 6 B, compact SDIS 2 B.
func BenchmarkAblationDisWidth(b *testing.B) {
	tr := mustTrace(b, "algorithms.tex")
	run := func(b *testing.B, rc bench.ReplayConfig) {
		for i := 0; i < b.N; i++ {
			res, err := bench.ReplayTreedoc(tr, rc)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Stats.Tree.OverheadBitsPerAtom(), "ovhd-bits/atom")
		}
	}
	b.Run("udis-10B", func(b *testing.B) { run(b, bench.ReplayConfig{Mode: ident.UDIS}) })
	b.Run("sdis-6B", func(b *testing.B) { run(b, bench.ReplayConfig{Mode: ident.SDIS}) })
	// The compact 2-byte variant reuses the SDIS replay with the
	// known-membership cost model applied at measurement time.
	b.Run("sdis-2B", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d, err := New(WithSite(1), WithCompactSiteIDs())
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < 500; j++ {
				if _, err := d.Append("x"); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(d.Stats().Tree.AvgIDBits(), "bits/id")
		}
	})
}

// BenchmarkAblationFlattenInterval sweeps the flatten heuristic interval
// (DESIGN.md ablation 3) on acf.tex.
func BenchmarkAblationFlattenInterval(b *testing.B) {
	tr := mustTrace(b, "acf.tex")
	for _, iv := range []int{0, 1, 2, 4, 8} {
		name := "never"
		if iv > 0 {
			name = fmt.Sprintf("every-%d", iv)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.ReplayTreedoc(tr, bench.ReplayConfig{Mode: ident.SDIS, FlattenInterval: iv})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Stats.Tree.Nodes), "final-nodes")
			}
		})
	}
}

// BenchmarkAblationGranularity varies atom granularity (Section 5 studies
// line vs paragraph; characters added for completeness).
func BenchmarkAblationGranularity(b *testing.B) {
	for _, tc := range []struct {
		name  string
		atoms int
		bytes int
	}{
		{"char", 2000, 8},
		{"line", 400, 40},
		{"paragraph", 100, 140},
	} {
		b.Run(tc.name, func(b *testing.B) {
			p := trace.Profile{
				Name: tc.name, Granularity: trace.Granularity(tc.name), Seed: 7,
				InitialAtoms: tc.atoms / 4, FinalAtoms: tc.atoms, Revisions: 40,
				AtomBytes: tc.bytes, EditsPerRevision: 8, ModifyFraction: 0.6, HotSpots: 2,
				RunLength: 6,
			}
			tr, err := trace.Generate(p)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := bench.ReplayTreedoc(tr, bench.ReplayConfig{Mode: ident.SDIS})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Stats.Tree.MemOverheadRatio(), "memovhd")
			}
		})
	}
}

// BenchmarkClusterConvergence measures end-to-end distributed editing: 4
// replicas, random latency, 200 edits, to quiescence.
func BenchmarkClusterConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := NewCluster(4, WithLatency(1, 20), WithSeed(int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		for e := 0; e < 200; e++ {
			r, err := c.Replica(SiteID(e%4 + 1))
			if err != nil {
				b.Fatal(err)
			}
			if err := r.InsertAt(r.Len(), "x"); err != nil {
				b.Fatal(err)
			}
		}
		c.Run(0)
		if !c.Converged() {
			b.Fatal("cluster did not converge")
		}
	}
}

// BenchmarkStorageCodec measures the Section 5.2 on-disk codec through the
// public snapshot API.
func BenchmarkStorageCodec(b *testing.B) {
	d, err := New(WithSite(1))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := d.Append(fmt.Sprintf("line-%04d", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := d.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Open(data); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(data)))
	}
}

// BenchmarkApplyBatch measures batched remote-operation delivery: one typing
// burst spliced at a source replica and applied to a fresh replica through
// ApplyBatch, the path the replication engine uses for each incoming frame.
func BenchmarkApplyBatch(b *testing.B) {
	const batch = 2_000
	src, err := NewTextBuffer(WithSite(1))
	if err != nil {
		b.Fatal(err)
	}
	ops, err := src.Append(strings.Repeat("treedoc! ", batch/9+1)[:batch])
	if err != nil {
		b.Fatal(err)
	}
	dst, err := NewTextBuffer(WithSite(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dst.ApplyBatch(ops); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		dst, err = NewTextBuffer(WithSite(2))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(batch, "ops/batch")
}

// BenchmarkSliceWalk guards the TextBuffer.Slice fix: the range streams out
// of one in-order walk, so a full-document slice is linear in its length.
// The per-rune-lookup implementation this replaced was quadratic, which a
// regression here would reintroduce as a >20x blowup at this size.
func BenchmarkSliceWalk(b *testing.B) {
	const size = 20_000
	buf, err := NewTextBuffer(WithSite(1))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := buf.Append(strings.Repeat("x", size)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := buf.Slice(0, size)
		if err != nil {
			b.Fatal(err)
		}
		if len(s) != size {
			b.Fatalf("slice length %d, want %d", len(s), size)
		}
		b.SetBytes(size)
	}
}

// BenchmarkSyncDigest guards the delta anti-entropy index: answering a
// peer's digest is a per-site binary search over run offsets plus
// contiguous suffix slices, so its cost tracks the answer size (a fixed
// 64-op lag here), not the retained-log length. The sub-benchmarks grow
// the log 128x at constant lag; near-flat ns/op across them is the
// sublinearity claim — the linear scan this replaced grew 128x with it.
func BenchmarkSyncDigest(b *testing.B) {
	const (
		sites = 8
		lag   = 64 // ops the requesting peer is behind, spread over all sites
	)
	for _, retained := range []int{1 << 10, 1 << 14, 1 << 17} {
		b.Run(fmt.Sprintf("retained=%d", retained), func(b *testing.B) {
			var log transport.RetainedLog
			seqs := make(map[ident.SiteID]uint64, sites)
			for i := 0; i < retained; i++ {
				// Round-robin writers: the worst case for the run index,
				// since every append interleaves and opens a new run.
				site := ident.SiteID(i%sites + 1)
				seqs[site]++
				ts := vclock.New()
				ts[site] = seqs[site]
				log.Append(causal.Message{From: site, TS: ts})
			}
			// The peer's digest covers everything but the log's tail.
			clock := vclock.New()
			for s, q := range seqs {
				clock[s] = q - lag/sites
			}
			var dst []causal.Message
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = log.AppendMissing(dst[:0], clock)
				if len(dst) != lag {
					b.Fatalf("digest answer carried %d ops, want %d", len(dst), lag)
				}
			}
		})
	}
}

// BenchmarkSyncBatchCodec measures the kindSyncBatch round-trip at session
// scale: one frame carrying 64 per-document digests (8-site vector clocks
// each), encoded and decoded per iteration — the per-link per-tick wire
// cost of batched multi-document sync.
func BenchmarkSyncBatchCodec(b *testing.B) {
	const (
		entries = 64
		sites   = 8
	)
	batch := make([]transport.SyncBatchEntry, entries)
	for i := range batch {
		vc := vclock.New()
		for s := 1; s <= sites; s++ {
			vc[ident.SiteID(s)] = uint64(1000 + i*sites + s)
		}
		batch[i] = transport.SyncBatchEntry{
			Doc:   fmt.Sprintf("doc-%04d", i),
			From:  ident.SiteID(i%sites + 1),
			Clock: vc,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame, err := transport.EncodeSyncBatch(batch, false)
		if err != nil {
			b.Fatal(err)
		}
		decoded, err := transport.DecodeFrame(frame)
		if err != nil {
			b.Fatal(err)
		}
		sb, ok := decoded.(*transport.SyncBatchFrame)
		if !ok {
			b.Fatalf("round-trip returned %T, want *transport.SyncBatchFrame", decoded)
		}
		if len(sb.Entries) != entries {
			b.Fatalf("round-trip carried %d entries, want %d", len(sb.Entries), entries)
		}
		b.SetBytes(int64(len(frame)))
	}
}

package treedoc

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"unicode/utf8"

	"github.com/treedoc/treedoc/internal/intern"
)

// ErrOutOfRange reports a splice or slice whose offsets fall outside the
// buffer. Concurrent editors hit it benignly: between reading Len and
// calling Splice, a remote delete applied by a replication engine may have
// shrunk the buffer. Detect it with errors.Is and retry with fresh
// offsets.
var ErrOutOfRange = errors.New("treedoc: offset out of range")

// TextBuffer adapts a Treedoc replica to the interface of a text editor
// buffer: rune-offset splices over a flat string, with one atom per rune.
// It is the paper's stated next step — "implementing Treedoc within an
// existing text editor" (Section 7) — packaged as a library layer: an
// editor calls Splice for every keystroke or paste, ships the returned
// operations, and applies remote operations as they arrive.
//
// All methods are safe for concurrent use.
type TextBuffer struct {
	mu  sync.Mutex
	doc *Doc // guarded by mu
}

// NewTextBuffer creates an empty character-granularity replica.
func NewTextBuffer(opts ...Option) (*TextBuffer, error) {
	d, err := New(opts...)
	if err != nil {
		return nil, err
	}
	return &TextBuffer{doc: d}, nil
}

// Len returns the buffer length in runes.
func (b *TextBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.doc.Len()
}

// String returns the buffer contents.
func (b *TextBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.text()
}

//treedoc:holds mu
func (b *TextBuffer) text() string {
	var sb strings.Builder
	for _, a := range b.doc.Content() {
		sb.WriteString(a)
	}
	return sb.String()
}

// Splice is the editor entry point: at rune offset off, delete delCount
// runes and insert text. It returns the operations to broadcast — deletes
// first, then inserts, matching the local execution order so remote
// replicas can replay them in sequence.
func (b *TextBuffer) Splice(off, delCount int, text string) ([]Op, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.splice(off, delCount, text)
}

// splice implements Splice with b.mu held. The deletes and the insert are
// applied as one atomic edit on the underlying Doc, so a flatten vote
// locking the region either rejects the whole splice (ErrRegionLocked) or
// none of it.
//
//treedoc:holds mu
func (b *TextBuffer) splice(off, delCount int, text string) ([]Op, error) {
	n := b.doc.Len()
	if off < 0 || off > n {
		return nil, fmt.Errorf("treedoc: splice offset %d outside [0,%d]: %w", off, n, ErrOutOfRange)
	}
	if delCount < 0 || off+delCount > n {
		return nil, fmt.Errorf("treedoc: splice delete %d at offset %d (len %d): %w", delCount, off, n, ErrOutOfRange)
	}
	var atoms []string
	if text != "" {
		// One interned string per rune: ASCII atoms share the intern table,
		// so typing costs no per-character heap allocation, and the rune
		// count is taken without materialising a []rune copy of the text.
		atoms = make([]string, 0, utf8.RuneCountInString(text))
		for _, r := range text {
			atoms = append(atoms, intern.Rune(r))
		}
	}
	return b.doc.spliceOps(off, delCount, atoms)
}

// Insert inserts text at rune offset off.
func (b *TextBuffer) Insert(off int, text string) ([]Op, error) {
	return b.Splice(off, 0, text)
}

// Delete removes count runes at offset off.
func (b *TextBuffer) Delete(off, count int) ([]Op, error) {
	return b.Splice(off, count, "")
}

// Append adds text at the end of the buffer. The length is read and the
// splice performed under one lock, so Append cannot race a concurrent
// remote delete into ErrOutOfRange.
func (b *TextBuffer) Append(text string) ([]Op, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.splice(b.doc.Len(), 0, text)
}

// Apply replays a remote operation.
func (b *TextBuffer) Apply(op Op) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.doc.Apply(op)
}

// ApplyAll replays remote operations in order.
func (b *TextBuffer) ApplyAll(ops []Op) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, op := range ops {
		if err := b.doc.Apply(op); err != nil {
			return fmt.Errorf("treedoc: op %d: %w", i, err)
		}
	}
	return nil
}

// ApplyBatch replays remote operations in order under one lock, returning
// how many applied before the first failure (see Doc.ApplyBatch); the
// replication engine prefers it over per-op Apply.
func (b *TextBuffer) ApplyBatch(ops []Op) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.doc.ApplyBatch(ops)
}

// Slice returns the text of the rune range [from, to). It streams the
// range in one in-order tree walk (O(height + to - from)); looking each
// atom up by index would re-descend from the root per rune and make long
// slices quadratic.
func (b *TextBuffer) Slice(from, to int) (string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.doc.Len()
	if from < 0 || to < from || to > n {
		return "", fmt.Errorf("treedoc: slice [%d,%d) outside [0,%d]: %w", from, to, n, ErrOutOfRange)
	}
	var sb strings.Builder
	sb.Grow(to - from) // at least one byte per atom
	if err := b.doc.VisitRange(from, to, func(a string) bool {
		sb.WriteString(a)
		return true
	}); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// Compact flattens the buffer to a zero-overhead array. Single-replica (or
// externally coordinated) use only, as with Doc.Flatten.
func (b *TextBuffer) Compact() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.doc.Flatten()
}

// Stats measures the replica's overheads.
func (b *TextBuffer) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.doc.Stats()
}

// Snapshot captures the buffer state and its version vector atomically,
// for compaction barriers and snapshot catch-up (see Doc.Snapshot).
func (b *TextBuffer) Snapshot() ([]byte, Version, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.doc.Snapshot()
}

// InstallSnapshot replaces the buffer state with a snapshot whose version
// dominates the buffer's own (see Doc.InstallSnapshot).
func (b *TextBuffer) InstallSnapshot(data []byte) (Version, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.doc.InstallSnapshot(data)
}

// Version returns the buffer's applied version vector (see Doc.Version).
func (b *TextBuffer) Version() Version {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.doc.Version()
}

// FlattenOp executes a committed flatten as a local operation (see
// Doc.FlattenOp); only a flatten commitment coordinator may call it.
func (b *TextBuffer) FlattenOp(path Path, afterSeq uint64) (Op, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.doc.FlattenOp(path, afterSeq)
}

// ColdestSubtree returns the best cold flatten candidate (see
// Doc.ColdestSubtree).
func (b *TextBuffer) ColdestSubtree(revisions int64, minNodes int) Path {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.doc.ColdestSubtree(revisions, minNodes)
}

// EndRevision advances the revision clock driving the cold-subtree
// heuristics (see Doc.EndRevision).
func (b *TextBuffer) EndRevision() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.doc.EndRevision()
}

// LockRegion freezes a subtree against local edits during a flatten
// commitment vote (see Doc.LockRegion); the replication engine calls it.
// Taking the buffer lock first means a freeze can never land in the middle
// of a concurrent Splice.
func (b *TextBuffer) LockRegion(token uint64, path Path) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.doc.LockRegion(token, path)
}

// UnlockRegion releases a LockRegion freeze.
func (b *TextBuffer) UnlockRegion(token uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.doc.UnlockRegion(token)
}

// Doc exposes the underlying document replica (e.g. for snapshots).
//
//treedoc:unguarded the pointer is set at construction and never reassigned
func (b *TextBuffer) Doc() *Doc { return b.doc }

package treedoc

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/treedoc/treedoc/internal/core"
)

func newTestDoc(t *testing.T, opts ...Option) *Doc {
	t.Helper()
	d, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("doc without site accepted")
	}
	if _, err := New(WithSite(0)); err == nil {
		t.Error("site 0 accepted")
	}
	if _, err := New(WithSite(1), WithMode(Mode(9))); err == nil {
		t.Error("bad mode accepted")
	}
	if _, err := New(WithSite(1), WithFlattenEvery(-1, 0)); err == nil {
		t.Error("negative flatten interval accepted")
	}
	if _, err := New(WithSite(1), WithLatencyIgnored()); err == nil {
		_ = err // placeholder to keep the linter happy if unused
	}
}

// WithLatencyIgnored is a compile-time check that Option composition fails
// loudly for misuse; it always errors.
func WithLatencyIgnored() Option {
	return func(*config) error { return fmt.Errorf("not a doc option") }
}

func TestBasicEditing(t *testing.T) {
	d := newTestDoc(t, WithSite(1))
	if _, err := d.InsertAt(0, "hello"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append("world"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.InsertAt(1, "brave"); err != nil {
		t.Fatal(err)
	}
	if got := d.ContentString(); got != "hello\nbrave\nworld" {
		t.Errorf("content = %q", got)
	}
	if d.Len() != 3 {
		t.Errorf("len = %d", d.Len())
	}
	if a, err := d.AtomAt(1); err != nil || a != "brave" {
		t.Errorf("AtomAt(1) = %q, %v", a, err)
	}
	if _, err := d.DeleteAt(1); err != nil {
		t.Fatal(err)
	}
	if got := d.ContentString(); got != "hello\nworld" {
		t.Errorf("content = %q", got)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	if d.Site() != 1 {
		t.Errorf("site = %d", d.Site())
	}
}

func TestTwoReplicaConvergence(t *testing.T) {
	alice := newTestDoc(t, WithSite(1))
	bob := newTestDoc(t, WithSite(2))

	var history []Op
	for i, s := range []string{"a", "b", "c"} {
		op, err := alice.InsertAt(i, s)
		if err != nil {
			t.Fatal(err)
		}
		history = append(history, op)
	}
	if err := bob.ApplyAll(history); err != nil {
		t.Fatal(err)
	}
	// Concurrent edits, exchanged.
	opA, err := alice.InsertAt(1, "from-alice")
	if err != nil {
		t.Fatal(err)
	}
	opB, err := bob.DeleteAt(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Apply(opB); err != nil {
		t.Fatal(err)
	}
	if err := bob.Apply(opA); err != nil {
		t.Fatal(err)
	}
	if alice.ContentString() != bob.ContentString() {
		t.Errorf("diverged: %q vs %q", alice.ContentString(), bob.ContentString())
	}
}

func TestInsertRunAtPublic(t *testing.T) {
	d := newTestDoc(t, WithSite(1))
	ops, err := d.InsertRunAt(0, []string{"1", "2", "3", "4", "5"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 5 {
		t.Errorf("ops = %d", len(ops))
	}
	if got := d.ContentString(); got != "1\n2\n3\n4\n5" {
		t.Errorf("content = %q", got)
	}
}

func TestOpCodecPublic(t *testing.T) {
	d := newTestDoc(t, WithSite(1))
	op, err := d.InsertAt(0, "payload")
	if err != nil {
		t.Fatal(err)
	}
	data, err := op.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Op
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	e := newTestDoc(t, WithSite(2))
	if err := e.Apply(back); err != nil {
		t.Fatal(err)
	}
	if e.ContentString() != "payload" {
		t.Errorf("replayed = %q", e.ContentString())
	}
}

func TestFlattenAndStats(t *testing.T) {
	d := newTestDoc(t, WithSite(1))
	for i := 0; i < 50; i++ {
		if _, err := d.Append(fmt.Sprintf("line %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := d.DeleteAt(10); err != nil {
			t.Fatal(err)
		}
	}
	before := d.Stats()
	if before.Tree.DeadMinis != 10 {
		t.Errorf("tombstones = %d", before.Tree.DeadMinis)
	}
	if err := d.Flatten(); err != nil {
		t.Fatal(err)
	}
	after := d.Stats()
	if after.Tree.MemBytes != 0 || after.Tree.Nodes != 0 {
		t.Errorf("flattened overheads: mem=%d nodes=%d", after.Tree.MemBytes, after.Tree.Nodes)
	}
	if d.Len() != 40 {
		t.Errorf("len = %d", d.Len())
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestFlattenHeuristicViaEndRevision(t *testing.T) {
	d := newTestDoc(t, WithSite(1), WithFlattenEvery(2, 0))
	for i := 0; i < 20; i++ {
		if _, err := d.Append(fmt.Sprintf("l%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	d.EndRevision()
	if _, err := d.InsertAt(0, "hot"); err != nil {
		t.Fatal(err)
	}
	d.EndRevision() // revision 2: flatten fires on the cold remainder
	s := d.Stats()
	if s.Tree.FlatAtoms == 0 {
		t.Error("heuristic flatten never fired")
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	d := newTestDoc(t, WithSite(7), WithMode(UDIS))
	for i := 0; i < 12; i++ {
		if _, err := d.Append(fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.DeleteAt(3); err != nil {
		t.Fatal(err)
	}
	data, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ContentString() != d.ContentString() {
		t.Errorf("restored content %q, want %q", got.ContentString(), d.ContentString())
	}
	if got.Site() != 7 {
		t.Errorf("restored site = %d", got.Site())
	}
	// The restored replica can keep editing without identifier collisions:
	// its counter and sequence survived the snapshot.
	op1, err := d.InsertAt(0, "orig")
	if err != nil {
		t.Fatal(err)
	}
	op2, err := got.InsertAt(0, "restored")
	if err != nil {
		t.Fatal(err)
	}
	if op1.Seq != op2.Seq {
		t.Errorf("sequence diverged after restore: %d vs %d", op1.Seq, op2.Seq)
	}
	if err := got.Check(); err != nil {
		t.Fatal(err)
	}
	// Corrupt snapshots error.
	if _, err := Open(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
	if _, err := Open(data[:8]); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

func TestDocConcurrencySafety(t *testing.T) {
	d := newTestDoc(t, WithSite(1))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				n := d.Len()
				if n == 0 || rng.Intn(3) > 0 {
					_, _ = d.InsertAt(rng.Intn(n+1), "x")
				} else {
					_, _ = d.DeleteAt(rng.Intn(n))
				}
			}
		}(g)
	}
	wg.Wait()
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	if d.Len() == 0 {
		t.Error("empty after concurrent editing")
	}
}

func TestClusterPublicAPI(t *testing.T) {
	c, err := NewCluster(3, WithLatency(1, 10), WithSeed(5), WithClusterMode(UDIS))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Sites()) != 3 {
		t.Fatalf("sites = %d", len(c.Sites()))
	}
	r1, err := c.Replica(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Replica(99); err == nil {
		t.Error("unknown replica returned")
	}
	for i := 0; i < 10; i++ {
		if err := r1.InsertAt(i, fmt.Sprintf("l%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(0)
	if !c.Converged() {
		t.Fatal("not converged")
	}
	r2, err := c.Replica(2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.ContentString() != r1.ContentString() {
		t.Error("replica contents differ")
	}
	if r2.Len() != 10 {
		t.Errorf("len = %d", r2.Len())
	}

	// Partition, diverge, heal, converge.
	if err := c.Partition(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Partition(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := r1.Append("from-one"); err != nil {
		t.Fatal(err)
	}
	if err := r2.Append("from-two"); err != nil {
		t.Fatal(err)
	}
	c.Run(0)
	c.HealAll()
	c.Run(0)
	if !c.Converged() {
		t.Fatal("not converged after heal")
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}

	// Distributed flatten through the commitment protocol.
	r1.ProposeFlatten()
	c.Run(0)
	if r1.FlattensApplied() != 1 {
		t.Errorf("flattens = %d", r1.FlattensApplied())
	}
	if r1.Stats().Tree.Nodes != 0 {
		t.Error("not compacted")
	}
	if !c.Converged() {
		t.Fatal("not converged after flatten")
	}
	if c.Now() == 0 {
		t.Error("clock did not advance")
	}
	r1.EndRevision()
	_ = r1.ProposeFlattenCold(1)
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(0); err == nil {
		t.Error("zero sites accepted")
	}
	if _, err := NewCluster(2, WithLatency(-1, 5)); err == nil {
		t.Error("negative latency accepted")
	}
	if _, err := NewCluster(2, WithLatency(10, 5)); err == nil {
		t.Error("inverted latency accepted")
	}
	if _, err := NewCluster(2, WithClusterMode(Mode(9))); err == nil {
		t.Error("bad mode accepted")
	}
	if _, err := NewCluster(2, WithLoss(1.5)); err == nil {
		t.Error("loss > 1 accepted")
	}
	if _, err := NewCluster(2, WithLoss(-0.1)); err == nil {
		t.Error("negative loss accepted")
	}
}

func TestClusterLossAndSync(t *testing.T) {
	c, err := NewCluster(2, WithLoss(1), WithSeed(3), WithLatency(1, 5))
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := c.Replica(1)
	r2, _ := c.Replica(2)
	if err := r1.Append("dropped"); err != nil {
		t.Fatal(err)
	}
	c.Run(0)
	if r2.Len() != 0 {
		t.Fatalf("len = %d under total loss", r2.Len())
	}
	r2.SyncWith(1)
	c.Run(0)
	if r2.Len() != 1 {
		t.Fatalf("sync did not recover: len = %d", r2.Len())
	}
	if !c.Converged() {
		t.Fatal("not converged")
	}
}

func TestSnapshotInstall(t *testing.T) {
	// Site 1 builds history; site 2 must adopt it via InstallSnapshot and
	// end up byte-identical, with a version vector that stands in for the
	// operations it skipped replaying.
	src := newTestDoc(t, WithSite(1))
	var ops []Op
	for i := 0; i < 20; i++ {
		op, err := src.Append(fmt.Sprintf("line-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ops = append(ops, op)
	}
	data, version, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if version.Get(1) != 20 {
		t.Fatalf("snapshot version = %v, want {1:20}", version)
	}

	dst := newTestDoc(t, WithSite(2))
	installed, err := dst.InstallSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if installed.Get(1) != 20 {
		t.Fatalf("installed version = %v", installed)
	}
	if dst.ContentString() != src.ContentString() {
		t.Fatalf("installed content %q, want %q", dst.ContentString(), src.ContentString())
	}
	if dst.Site() != 2 {
		t.Fatalf("install changed site to %d", dst.Site())
	}
	if err := dst.Check(); err != nil {
		t.Fatal(err)
	}
	// The receiver keeps editing under its own identity.
	if _, err := dst.Append("by-site-2"); err != nil {
		t.Fatal(err)
	}

	// A stale snapshot (covering less than the replica has) is rejected
	// and leaves the replica untouched.
	third := newTestDoc(t, WithSite(3))
	if err := third.ApplyAll(ops); err != nil {
		t.Fatal(err)
	}
	if _, err := third.Append("local-extra"); err != nil {
		t.Fatal(err)
	}
	want := third.ContentString()
	if _, err := third.InstallSnapshot(data); err == nil {
		t.Fatal("stale snapshot accepted")
	} else if !errors.Is(err, core.ErrStaleSnapshot) {
		t.Fatalf("stale rejection error = %v, want core.ErrStaleSnapshot", err)
	}
	if third.ContentString() != want {
		t.Fatal("rejected install mutated the replica")
	}
}

func TestTextBufferSnapshotInstall(t *testing.T) {
	src, err := NewTextBuffer(WithSite(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Append("hello, snapshot"); err != nil {
		t.Fatal(err)
	}
	data, _, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewTextBuffer(WithSite(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.InstallSnapshot(data); err != nil {
		t.Fatal(err)
	}
	if dst.String() != src.String() {
		t.Fatalf("buffer install: %q != %q", dst.String(), src.String())
	}
}
